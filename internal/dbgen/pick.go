package dbgen

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"qfe/internal/cost"
	"qfe/internal/par"
	"qfe/internal/tupleclass"
)

// CandidateSet is a subset of skyline pairs evaluated by the cost model.
type CandidateSet struct {
	Indices []int // positions in the SP slice, ascending
	Pairs   []tupleclass.Pair
	Balance float64
	Cost    float64
	Subsets int // predicted number of partition blocks
}

// evalCtx caches, per skyline pair, everything the cost model needs so that
// evaluating a candidate set is pure byte arithmetic: the Lemma 5.1 case
// code per query, the replace-cost per query, the pair's edit cost and the
// base tables it touches. Algorithm 4 evaluates thousands of sets; without
// this cache every evaluation would re-run predicate matching.
type evalCtx struct {
	g      *Generator
	sp     []ScoredPair
	x      int
	codes  [][]uint8 // [pair][query] case code
	repl   [][]int   // [pair][query] modify cost when code == replace
	edit   []int     // [pair] minEdit(s,d)
	tables [][]string
	nq     int
	arityR int
	// srcID[pair] resolves the pair's source class to its index in
	// g.srcClasses (by class hash, Equal-verified), -1 when the class has no
	// inhabitants; srcCap[class] is the inhabitant count. Feasibility checks
	// then count duplicates over small index slices instead of building a
	// map keyed by Class.Key strings per candidate set.
	srcID  []int
	srcCap []int
}

func (g *Generator) newEvalCtx(sp []ScoredPair, x, workers int) *evalCtx {
	ctx := &evalCtx{g: g, sp: sp, x: x, nq: len(g.Queries), arityR: g.R.Arity()}
	ctx.codes = make([][]uint8, len(sp))
	ctx.repl = make([][]int, len(sp))
	ctx.edit = make([]int, len(sp))
	ctx.tables = make([][]string, len(sp))
	byHash := make(map[uint64][]int, len(g.srcClasses))
	for si := range g.srcClasses {
		h := g.srcClasses[si].Class.Hash64()
		byHash[h] = append(byHash[h], si)
	}
	ctx.srcCap = make([]int, len(g.srcClasses))
	for si := range g.srcClasses {
		ctx.srcCap[si] = len(g.srcClasses[si].Rows)
	}
	ctx.srcID = make([]int, len(sp))
	for i := range sp {
		ctx.srcID[i] = -1
		for _, si := range byHash[sp[i].Pair.Src.Hash64()] {
			if g.srcClasses[si].Class.Equal(sp[i].Pair.Src) {
				ctx.srcID[i] = si
				break
			}
		}
	}
	// Per-pair slots are written by disjoint indexes, and CaseOf/ReplaceCost
	// only read the space, so building the cache parallelises trivially.
	par.Do(len(sp), workers, func(pi int) {
		p := sp[pi]
		ctx.edit[pi] = p.Pair.EditCost
		codes := make([]uint8, ctx.nq)
		repl := make([]int, ctx.nq)
		for qi := 0; qi < ctx.nq; qi++ {
			codes[qi] = g.Space.CaseOf(p.Pair, qi)
			repl[qi] = g.Space.ReplaceCost(p.Pair, qi)
		}
		ctx.codes[pi] = codes
		ctx.repl[pi] = repl
		tset := map[string]bool{}
		for _, a := range p.Pair.ChangedAttrs() {
			tset[g.Joined.Cols[g.Space.Parts[a].Col].Table] = true
		}
		for t := range tset {
			ctx.tables[pi] = append(ctx.tables[pi], t)
		}
	})
	return ctx
}

// evaluate scores the candidate set identified by ascending SP indices.
// Sets of up to 32 pairs — every set Algorithm 4 reaches in practice — pack
// the per-query case vector into a uint64 (2 bits per pair) and group
// through a small linear-scanned slice, replacing the per-query key-string
// allocations and the map of blocks the legacy path built per evaluation.
// The cost model consumes sizes and edits through order-insensitive sums,
// so block order does not matter (the legacy path iterated a map).
func (ctx *evalCtx) evaluate(indices []int) (costVal, balance float64, k int) {
	var sizes, resultEdits []int
	if len(indices) <= 32 {
		type pblock struct {
			key  uint64
			size int
			rep  int
		}
		blocks := make([]pblock, 0, 16)
		// Linear scan while the block count stays small (the common case:
		// partitions have a handful of blocks); an index map takes over past
		// that so diverse case vectors never go quadratic in |QC|.
		var blockIdx map[uint64]int
		for qi := 0; qi < ctx.nq; qi++ {
			var key uint64
			for _, pi := range indices {
				key = key<<2 | uint64(ctx.codes[pi][qi])
			}
			found := -1
			if blockIdx != nil {
				if bi, ok := blockIdx[key]; ok {
					found = bi
				}
			} else {
				for bi := range blocks {
					if blocks[bi].key == key {
						found = bi
						break
					}
				}
			}
			if found < 0 {
				blocks = append(blocks, pblock{key: key, size: 1, rep: qi})
				if blockIdx != nil {
					blockIdx[key] = len(blocks) - 1
				} else if len(blocks) > 32 {
					blockIdx = make(map[uint64]int, ctx.nq)
					for bi := range blocks {
						blockIdx[blocks[bi].key] = bi
					}
				}
			} else {
				blocks[found].size++
			}
		}
		sizes = make([]int, 0, len(blocks))
		resultEdits = make([]int, 0, len(blocks))
		for _, b := range blocks {
			sizes = append(sizes, b.size)
			edit := 0
			key := b.key
			for i := len(indices) - 1; i >= 0; i-- {
				switch key & 3 {
				case 1, 2: // add / remove
					edit += ctx.arityR
				case 3: // replace
					edit += ctx.repl[indices[i]][b.rep]
				}
				key >>= 2
			}
			resultEdits = append(resultEdits, edit)
		}
	} else {
		// Partition queries by their case-code vector across the set's pairs.
		type block struct {
			size int
			rep  int
		}
		blocks := map[string]*block{}
		keyBuf := make([]byte, len(indices))
		for qi := 0; qi < ctx.nq; qi++ {
			for i, pi := range indices {
				keyBuf[i] = ctx.codes[pi][qi]
			}
			k := string(keyBuf)
			b := blocks[k]
			if b == nil {
				blocks[k] = &block{size: 1, rep: qi}
			} else {
				b.size++
			}
		}
		sizes = make([]int, 0, len(blocks))
		resultEdits = make([]int, 0, len(blocks))
		for key, b := range blocks {
			sizes = append(sizes, b.size)
			edit := 0
			for i, pi := range indices {
				switch key[i] {
				case 1, 2: // add / remove
					edit += ctx.arityR
				case 3: // replace
					edit += ctx.repl[pi][b.rep]
				}
			}
			resultEdits = append(resultEdits, edit)
		}
	}
	dbEdit := 0
	tbls := make([]string, 0, 8)
	for _, pi := range indices {
		dbEdit += ctx.edit[pi]
		for _, t := range ctx.tables[pi] {
			dup := false
			for _, u := range tbls {
				if u == t {
					dup = true
					break
				}
			}
			if !dup {
				tbls = append(tbls, t)
			}
		}
	}
	in := cost.Inputs{
		DBEdit:            dbEdit,
		ModifiedRelations: len(tbls),
		ModifiedTuples:    len(indices),
		ResultEdits:       resultEdits,
		SubsetSizes:       sizes,
		X:                 ctx.x,
	}
	return ctx.g.Opts.Cost.Cost(in), cost.Balance(sizes), len(sizes)
}

// feasible checks that the multiset of source classes demanded by the set
// does not exceed the tuples available in each class. It counts duplicate
// source-class ids over the (small) index slice — O(k²), zero allocations.
func (ctx *evalCtx) feasible(indices []int) bool {
	for _, a := range indices {
		id := ctx.srcID[a]
		if id < 0 {
			return false
		}
		n := 0
		for _, b := range indices {
			if ctx.srcID[b] == id {
				n++
			}
		}
		if n > ctx.srcCap[id] {
			return false
		}
	}
	return true
}

// PickSubsets implements Algorithm 4 (Pick-STC-DTC-Subset) and returns
// candidate sets ranked by the configured strategy (the paper's cost model,
// or max-partitions for the §7.7 comparison): the head is the paper's Sopt;
// the tail provides fallbacks for when concretization of the optimum fails
// (side effects or integrity constraints).
//
// The search grows i-pair sets from (i−1)-pair sets, keeping only sets whose
// balance strictly improves on their parent — the paper's pruning heuristic.
// MaxFrontier additionally caps each level by balance, bounding the
// O(2^|SP|) worst case without changing behaviour on the small frontiers
// observed in practice (paper §5.4, Table 4).
//
// Each level runs in three phases: a serial enumeration that lists the
// unique feasible candidate sets in the legacy evaluation order (up to the
// remaining evaluation budget), a parallel scoring pass over that list —
// evaluate is a pure function of the precomputed evalCtx — and a serial
// replay that applies the pruning rule and ranking in the listed order. The
// output is therefore byte-identical to the serial algorithm at every
// Parallelism setting, including when MaxSetsEvaluated truncates the search.
func (g *Generator) PickSubsets(sp []ScoredPair, x int) []CandidateSet {
	if len(sp) == 0 {
		return nil
	}
	workers := par.Workers(g.Opts.Parallelism)
	ctx := g.newEvalCtx(sp, x, workers)
	best := newTopK(g.Opts.MaxCandidateSets, g.Opts.Strategy)
	evaluated := 0
	maxEval := g.Opts.MaxSetsEvaluated
	if maxEval <= 0 {
		maxEval = 50000
	}

	type evalResult struct {
		cost    float64
		balance float64
		subsets int
	}
	scoreAll := func(sets [][]int) []evalResult {
		out := make([]evalResult, len(sets))
		par.Do(len(sets), workers, func(k int) {
			c, b, n := ctx.evaluate(sets[k])
			out[k] = evalResult{cost: c, balance: b, subsets: n}
		})
		return out
	}

	// Steps 1–8: singletons.
	type frontierEntry struct {
		indices []int
		balance float64
	}
	var singles [][]int
	for i := range sp {
		if ctx.feasible([]int{i}) {
			singles = append(singles, []int{i})
		}
	}
	evals := scoreAll(singles)
	frontier := make([]frontierEntry, 0, len(singles))
	for k, indices := range singles {
		ev := evals[k]
		evaluated++
		best.add(CandidateSet{Indices: indices, Pairs: pairsAt(sp, indices),
			Balance: ev.balance, Cost: ev.cost, Subsets: ev.subsets})
		frontier = append(frontier, frontierEntry{indices: indices, balance: ev.balance})
	}

	// Steps 9–21: grow sets while balance improves.
	for level := 2; level <= len(sp) && len(frontier) > 0 && evaluated < maxEval; level++ {
		// Phase 1: list this level's unique feasible children in evaluation
		// order, recording the balance of the first parent reaching each
		// (later parents are deduplicated away, as in the serial sweep).
		type child struct {
			indices       []int
			parentBalance float64
		}
		var pending []child
		seen := map[string]bool{}
		budget := maxEval - evaluated
	enumerate:
		for _, op := range frontier {
			inOp := map[int]bool{}
			for _, i := range op.indices {
				inOp[i] = true
			}
			for pi := range sp {
				if inOp[pi] {
					continue
				}
				indices := append(append([]int(nil), op.indices...), pi)
				sort.Ints(indices)
				key := indexKey(indices)
				if seen[key] {
					continue
				}
				seen[key] = true
				if !ctx.feasible(indices) {
					continue
				}
				pending = append(pending, child{indices: indices, parentBalance: op.balance})
				if len(pending) >= budget {
					break enumerate
				}
			}
		}

		// Phase 2: score the children concurrently.
		sets := make([][]int, len(pending))
		for k := range pending {
			sets[k] = pending[k].indices
		}
		evals := scoreAll(sets)

		// Phase 3: replay serially — prune, rank, grow the next frontier.
		var next []frontierEntry
		for k := range pending {
			ch, ev := pending[k], evals[k]
			evaluated++
			if ev.balance < ch.parentBalance { // strict improvement required (step 15)
				next = append(next, frontierEntry{indices: ch.indices, balance: ev.balance})
				best.add(CandidateSet{Indices: ch.indices, Pairs: pairsAt(sp, ch.indices),
					Balance: ev.balance, Cost: ev.cost, Subsets: ev.subsets})
			}
		}
		if g.Opts.MaxFrontier > 0 && len(next) > g.Opts.MaxFrontier {
			sort.SliceStable(next, func(a, b int) bool { return next[a].balance < next[b].balance })
			next = next[:g.Opts.MaxFrontier]
		}
		frontier = next
	}
	return best.ranked()
}

func pairsAt(sp []ScoredPair, indices []int) []tupleclass.Pair {
	out := make([]tupleclass.Pair, len(indices))
	for i, idx := range indices {
		out[i] = sp[idx].Pair
	}
	return out
}

func indexKey(indices []int) string {
	var b strings.Builder
	for i, v := range indices {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// topK keeps the k best candidate sets under the configured strategy:
// cost model (cost, balance, size) or max-partitions (subsets desc, cost).
type topK struct {
	k        int
	strategy Strategy
	sets     []CandidateSet
}

func newTopK(k int, s Strategy) *topK {
	if k <= 0 {
		k = 8
	}
	return &topK{k: k, strategy: s}
}

func (t *topK) add(c CandidateSet) {
	if math.IsInf(c.Cost, 1) {
		return // never consider non-splitting sets
	}
	t.sets = append(t.sets, c)
	sort.SliceStable(t.sets, func(a, b int) bool {
		x, y := t.sets[a], t.sets[b]
		if t.strategy == StrategyMaxPartitions {
			if x.Subsets != y.Subsets {
				return x.Subsets > y.Subsets
			}
		}
		if x.Cost != y.Cost {
			return x.Cost < y.Cost
		}
		if x.Balance != y.Balance {
			return x.Balance < y.Balance
		}
		return len(x.Indices) < len(y.Indices)
	})
	if len(t.sets) > t.k {
		t.sets = t.sets[:t.k]
	}
}

func (t *topK) ranked() []CandidateSet { return t.sets }
