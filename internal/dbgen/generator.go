// Package dbgen implements the paper's Database Generator module (§5):
// given the initial database D (via its foreign-key join) and the remaining
// candidate queries QC, it produces a modified database D' that partitions
// QC into result-distinct subsets while minimising the user-effort cost
// model of §3.
//
// The module follows Algorithm 2: enumerate skyline (STC, DTC) pairs
// (Algorithm 3, Skyline-STC-DTC-Pairs), pick a good subset of pairs
// (Algorithm 4, Pick-STC-DTC-Subset), then concretize the chosen abstract
// modifications into actual cell edits — preferring tuples without join
// side effects (§5.4.1) and rejecting edits that violate integrity
// constraints (§6.3).
package dbgen

import (
	"errors"
	"fmt"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/cost"
	"qfe/internal/db"
	"qfe/internal/editdist"
	"qfe/internal/evalcache"
	"qfe/internal/par"
	"qfe/internal/relation"
	"qfe/internal/tupleclass"
)

// Budget bounds Algorithm 3's enumeration: the paper's time threshold δ
// plus a deterministic pair-count bound used by tests (time-based budgets
// are machine-dependent).
type Budget struct {
	MaxDuration time.Duration // δ; 0 means unlimited
	MaxPairs    int           // 0 means unlimited
}

// exceeded reports whether the budget is spent.
func (b Budget) exceeded(start time.Time, pairs int) bool {
	if b.MaxDuration > 0 && time.Since(start) >= b.MaxDuration {
		return true
	}
	if b.MaxPairs > 0 && pairs >= b.MaxPairs {
		return true
	}
	return false
}

// Strategy selects how Algorithm 4 ranks candidate pair sets.
type Strategy uint8

const (
	// StrategyCostModel is the paper's approach: minimise the Eq. 5 user-
	// effort cost, tie-breaking by balance.
	StrategyCostModel Strategy = iota
	// StrategyMaxPartitions is the §7.7 user-study alternative: maximise
	// the number of partitioned query subsets (fewer iterations, but more
	// per-round reading effort).
	StrategyMaxPartitions
)

// Options configures the generator.
type Options struct {
	Cost     cost.Params
	Budget   Budget
	Strategy Strategy
	// MaxSkylinePairs caps |SP| handed to Algorithm 4 (0 = all).
	MaxSkylinePairs int
	// MaxFrontier caps Algorithm 4's per-level frontier |OPᵢ| as a safety
	// valve against its O(2^|SP|) worst case (0 = unlimited).
	MaxFrontier int
	// MaxSetsEvaluated caps the total number of candidate sets Algorithm 4
	// scores (0 = 50000).
	MaxSetsEvaluated int
	// MaxCandidateSets caps how many optimal sets Generate tries to
	// concretize before giving up (alternatives are needed when a set's
	// concrete side effects destroy its predicted partition).
	MaxCandidateSets int
	// Parallelism sets the worker count for the generator's parallel loops:
	// candidate evaluation, skyline (STC, DTC) enumeration, Algorithm 4 set
	// scoring and the concrete partitioning. 0 selects GOMAXPROCS; 1 forces
	// the legacy serial path, whose results every parallel path reproduces
	// exactly whenever the δ budget does not truncate enumeration (time-based
	// budgets are inherently machine-dependent either way; see Budget).
	Parallelism int
	// Cache, when non-nil, memoises candidate evaluations keyed by
	// (query fingerprint, joined-relation content hash), so repeated rounds
	// of one session — and repeated sessions over the same data, as in the
	// β/δ sweeps — skip re-executing unchanged candidates.
	Cache *evalcache.Cache
}

// DefaultOptions mirrors the paper's defaults: β = 1, δ = 1s scaled to our
// engine (see DESIGN.md §2): 10ms.
func DefaultOptions() Options {
	return Options{
		Cost:             cost.DefaultParams(),
		Budget:           Budget{MaxDuration: 10 * time.Millisecond},
		MaxFrontier:      64,
		MaxSetsEvaluated: 50000,
		MaxCandidateSets: 8,
		Cache:            evalcache.Default(),
	}
}

// ErrNoSplit reports that no reachable modification distinguishes the
// remaining candidate queries — they are equivalent over the tuple-class
// space.
var ErrNoSplit = errors.New("dbgen: no database modification distinguishes the remaining candidates")

// errNotRealizable reports that no pair of a chosen set survived
// concretization (integrity-constraint rejections, conflicting base rows).
// It is the one concretize failure Generate may degrade on; any other error
// is a genuine engine fault and propagates.
var errNotRealizable = errors.New("dbgen: no pair of the chosen set could be concretized validly")

// Generator winnows one candidate set against one database. It is built
// once per QFE iteration (the space depends on QC).
type Generator struct {
	DB      *db.Database
	Joined  *db.Joined
	Space   *tupleclass.Space
	Queries []*algebra.Query
	R       *relation.Relation
	Opts    Options

	baseResults []*relation.Relation // Q(D) per query (= R for true candidates)
	srcClasses  []tupleclass.SourceClass
	srcRows     map[string][]int

	// Algorithm 4 stage times of the latest PickSubsets call (observe-only;
	// copied into Result by Generate).
	alg4Enum, alg4Score, alg4TopK time.Duration
}

// New prepares a generator for the given database, precomputed join,
// candidate queries and target result R.
func New(d *db.Database, joined *db.Joined, queries []*algebra.Query,
	r *relation.Relation, opts Options) (*Generator, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("dbgen: empty candidate set")
	}
	space, err := tupleclass.NewSpace(joined.Rel, queries)
	if err != nil {
		return nil, err
	}
	// Join-key columns are structural: an edit to one changes which base
	// tuples join, which the delta model (in-place joined-tuple replacement,
	// Lemma 5.1) cannot predict. Freeze them so no enumerated modification
	// touches them; candidates differing only there surface as ErrNoSplit
	// (provably indistinguishable within the reachable modification space).
	space.Freeze(joined.KeyCols)
	mCandidates.Observe(int64(len(queries)))
	g := &Generator{DB: d, Joined: joined, Space: space, Queries: queries, R: r, Opts: opts}
	g.baseResults = make([]*relation.Relation, len(queries))
	if err := g.evaluateBase(); err != nil {
		return nil, err
	}
	g.srcClasses, err = space.SourceClasses()
	if err != nil {
		return nil, err
	}
	g.srcRows = make(map[string][]int, len(g.srcClasses))
	for _, sc := range g.srcClasses {
		g.srcRows[sc.Key] = sc.Rows
	}
	return g, nil
}

// evaluateBase computes Q(D) for every candidate on the shared join — the
// per-round evaluation the winnowing loop repeats with a shrinking QC, so
// nearly every round after the first is answered entirely from the cache.
// Cache hits are subtracted up front through one batched lookup; the
// remaining misses are evaluated together in one shared columnar scan
// (algebra.BatchEvaluateOnJoined over the join's memoised Columnar). A lone
// miss takes the scalar path instead — the batch engine's differential
// reference — since a single query gains nothing from a shared scan.
//
// DISTINCT candidates are evaluated under bag semantics here: the stored
// base feeds the incremental delta path, where set membership after a
// modification depends on how many joined rows still produce a tuple — a
// collapsed base would drop a tuple as soon as any one of its duplicate
// producers is edited away. The collapse happens at materialisation
// (partitionConcrete) and inside DeltaFingerprint's set branch. The cache
// key is the bag form's fingerprint, which coincides — correctly, the
// results are identical — with a structurally equal non-DISTINCT candidate.
func (g *Generator) evaluateBase() error {
	defer func(start time.Time) { mBatchEval.ObserveDuration(time.Since(start)) }(time.Now())
	// Bag-semantics view of the candidate set (clones only for DISTINCT).
	qs := make([]*algebra.Query, len(g.Queries))
	for i, q := range g.Queries {
		if q.Distinct {
			bag := q.Clone()
			bag.Distinct = false
			q = bag
		}
		qs[i] = q
	}

	missing := make([]int, 0, len(qs))
	var keys []evalcache.Key
	if g.Opts.Cache != nil {
		dbHash := g.Joined.ContentHash()
		keys = make([]evalcache.Key, len(qs))
		for i, q := range qs {
			keys[i] = evalcache.Key{Query: q.Fingerprint(), DB: dbHash}
		}
		cached, _ := g.Opts.Cache.GetBatch(keys)
		for i, res := range cached {
			if res == nil {
				missing = append(missing, i)
				continue
			}
			if res.Name != qs[i].Name {
				// Fingerprints are structural: the same query cached from
				// another session may carry a different label.
				res = &relation.Relation{Name: qs[i].Name, Schema: res.Schema, Tuples: res.Tuples}
			}
			g.baseResults[i] = res
		}
	} else {
		for i := range qs {
			missing = append(missing, i)
		}
	}

	switch {
	case len(missing) == 0:
		return nil
	case len(missing) == 1:
		i := missing[0]
		res, err := qs[i].EvaluateOnJoined(g.Joined.Rel)
		if err != nil {
			return err
		}
		g.baseResults[i] = res
		if g.Opts.Cache != nil {
			g.Opts.Cache.Put(keys[i], res)
		}
		return nil
	default:
		missQs := make([]*algebra.Query, len(missing))
		for k, i := range missing {
			missQs[k] = qs[i]
		}
		results, err := algebra.BatchEvaluateOnJoinedParallel(missQs, g.Joined.Columnar(),
			par.Workers(g.Opts.Parallelism))
		if err != nil {
			return err
		}
		for k, i := range missing {
			g.baseResults[i] = results[k]
			if g.Opts.Cache != nil {
				g.Opts.Cache.Put(keys[i], results[k])
			}
		}
		return nil
	}
}

// Result is the outcome of one Database-Generator invocation, carrying both
// the modified database and the statistics the paper reports per round
// (Table 1, Table 4, Table 7).
type Result struct {
	DB    *db.Database
	Edits []db.CellEdit
	Pairs []tupleclass.Pair // the concretized Sopt

	// Partition groups query indexes by their result on DB; Results holds
	// one representative result relation per group.
	Partition [][]int
	Results   []*relation.Relation

	// Costs, concrete (post side effects).
	DBCost        int // minEdit(D,D') = number of cell edits
	NumRelations  int // n of Eq. 3
	ResultCost    int // Σᵢ minEdit(R, Rᵢ)
	AvgResultCost float64

	// Search statistics.
	SkylinePairs    int // |SP|
	EnumeratedPairs int
	X               int // Lemma 3.1's x
	Alg3Time        time.Duration
	Alg4Time        time.Duration
	// Alg4Time split by pipeline stage (DESIGN.md §10): candidate-set
	// enumeration, cost-model scoring, and the in-order prune/rank replay.
	Alg4EnumTime   time.Duration
	Alg4ScoreTime  time.Duration
	Alg4TopKTime   time.Duration
	ConcretizeTime time.Duration
}

// Generate runs Algorithm 2 end to end and returns a modified database that
// concretely partitions the candidates into at least two groups, or
// ErrNoSplit.
func (g *Generator) Generate() (*Result, error) {
	t0 := time.Now()
	sp, stats := g.SkylinePairs()
	alg3 := time.Since(t0)
	mSkyline.ObserveDuration(alg3)
	scanned := false // whether sp already is the unbudgeted scan's output
	if len(sp) == 0 {
		// Budgeted enumeration found nothing; do an unbudgeted scan for any
		// splitting pair before declaring equivalence.
		sp = g.anySplittingPairs(64)
		scanned = true
		if len(sp) == 0 {
			mNoSplit.Inc()
			return nil, ErrNoSplit
		}
	}
	if g.Opts.MaxSkylinePairs > 0 && len(sp) > g.Opts.MaxSkylinePairs {
		sp = sp[:g.Opts.MaxSkylinePairs]
	}
	mSkylinePairs.Observe(int64(len(sp)))

	t1 := time.Now()
	candidates := g.PickSubsets(sp, stats.X)
	alg4 := time.Since(t1)
	mAlg4.ObserveDuration(alg4)

	t2 := time.Now()
	for _, cand := range candidates {
		res, err := g.concretize(cand.Pairs)
		if err != nil {
			if !errors.Is(err, errNotRealizable) {
				// Engine fault, not a constraint rejection: surface it
				// instead of masking it with a coarser split.
				return nil, fmt.Errorf("dbgen: concretize: %w", err)
			}
			continue
		}
		if len(res.Partition) < 2 {
			continue // side effects collapsed the predicted split; try next
		}
		res.SkylinePairs = len(sp)
		res.EnumeratedPairs = stats.Enumerated
		res.X = stats.X
		res.Alg3Time = alg3
		res.Alg4Time = alg4
		res.ConcretizeTime = time.Since(t2)
		g.observeResult(res, t0)
		return res, nil
	}
	// None of the optimal sets was realizable (integrity-constraint
	// rejections or conflicting base rows). Rather than fail the round, fall
	// back to realizing any single splitting pair: a coarse binary split
	// keeps winnowing moving, matching the paper's behaviour under budget
	// truncation. Only when no enumerated pair concretizes at all are the
	// remaining candidates unseparable within the reachable, constraint-
	// respecting modification space — which is ErrNoSplit, not a failure.
	fallback := append([]ScoredPair(nil), sp...)
	if len(fallback) > 128 {
		fallback = fallback[:128]
	}
	if !scanned {
		fallback = append(fallback, g.anySplittingPairs(64)...)
	}
	tried := make(map[string]bool, len(fallback))
	for _, p := range fallback {
		if k := p.Pair.Key(); tried[k] {
			continue
		} else {
			tried[k] = true
		}
		res, err := g.concretize([]tupleclass.Pair{p.Pair})
		if err != nil {
			if !errors.Is(err, errNotRealizable) {
				return nil, fmt.Errorf("dbgen: concretize: %w", err)
			}
			continue
		}
		if len(res.Partition) < 2 {
			continue
		}
		res.SkylinePairs = len(sp)
		res.EnumeratedPairs = stats.Enumerated
		res.X = stats.X
		res.Alg3Time = alg3
		res.Alg4Time = alg4
		res.ConcretizeTime = time.Since(t2)
		g.observeResult(res, t0)
		return res, nil
	}
	mNoSplit.Inc()
	return nil, ErrNoSplit
}

// observeResult stamps the Algorithm 4 stage breakdown on a successful
// round's Result and feeds the round-phase metrics.
func (g *Generator) observeResult(res *Result, start time.Time) {
	res.Alg4EnumTime = g.alg4Enum
	res.Alg4ScoreTime = g.alg4Score
	res.Alg4TopKTime = g.alg4TopK
	mConcretize.ObserveDuration(res.ConcretizeTime)
	mRounds.Inc()
	mGenerate.ObserveDuration(time.Since(start))
}

// partitionConcrete evaluates every query incrementally against the edits
// and groups them by result fingerprint. The Lemma 5.1 deltas for the whole
// candidate set come from one shared pass over the modified rows
// (algebra.BatchDeltaOnJoined: unique terms evaluated once per row, not once
// per query), and the fingerprints from one incremental maintenance pass
// (algebra.BatchApplyDelta) — re-scanning nothing. A lone candidate keeps
// the scalar path as the differential reference. The per-block result
// materialisation + edit-distance costing still run on the configured
// worker pool; grouping stays serial in query order, so the partition (and
// everything downstream) is byte-identical to the Parallelism = 1 path.
func (g *Generator) partitionConcrete(edits []db.CellEdit) ([][]int, []*relation.Relation, []int, error) {
	modified, err := g.modifiedJoinedRows(edits)
	if err != nil {
		return nil, nil, nil, err
	}
	workers := par.Workers(g.Opts.Parallelism)

	var (
		deltas []algebra.ResultDelta
		fps    []algebra.ResultFP
	)
	if len(g.Queries) == 1 {
		q := g.Queries[0]
		delta, err := q.DeltaOnJoined(g.Joined.Rel, modified)
		if err != nil {
			return nil, nil, nil, err
		}
		deltas = []algebra.ResultDelta{delta}
		fps = []algebra.ResultFP{q.DeltaFingerprint(g.baseResults[0], delta)}
	} else {
		deltas, err = algebra.BatchDeltaOnJoined(g.Queries, g.Joined.Rel, modified)
		if err != nil {
			return nil, nil, nil, err
		}
		// Fingerprint maintenance is independent per query: spread it across
		// the worker pool with indexed output slots (byte-identical at every
		// worker count).
		fps = make([]algebra.ResultFP, len(g.Queries))
		par.Do(len(g.Queries), workers, func(qi int) {
			_, fps[qi] = algebra.ApplyDeltaFP(g.Queries[qi], g.baseResults[qi], deltas[qi], false)
		})
	}

	groups := map[algebra.ResultFP][]int{}
	order := []algebra.ResultFP{}
	for qi := range g.Queries {
		fp := fps[qi]
		if _, ok := groups[fp]; !ok {
			order = append(order, fp)
		}
		groups[fp] = append(groups[fp], qi)
	}

	parts := make([][]int, len(order))
	results := make([]*relation.Relation, len(order))
	resultCosts := make([]int, len(order))
	par.Do(len(order), workers, func(bi int) {
		qs := groups[order[bi]]
		parts[bi] = qs
		rep := qs[0]
		ri := algebra.ApplyDelta(g.baseResults[rep], deltas[rep])
		if g.Queries[rep].Distinct {
			ri = ri.Distinct()
		}
		results[bi] = ri
		resultCosts[bi] = editdist.MinEdit(g.R, ri)
	})
	return parts, results, resultCosts, nil
}

// modifiedJoinedRows maps base-table cell edits onto the joined relation:
// for every affected joined row it builds the post-edit tuple, including all
// side-effect rows discovered through the join index.
func (g *Generator) modifiedJoinedRows(edits []db.CellEdit) (map[int]relation.Tuple, error) {
	modified := map[int]relation.Tuple{}
	for _, e := range edits {
		// Locate the joined column fed by this base column.
		colIdx := -1
		for ci, ref := range g.Joined.Cols {
			if ref.Table == e.Table && ref.Column == e.Column {
				colIdx = ci
				break
			}
		}
		if colIdx < 0 {
			return nil, fmt.Errorf("dbgen: edit %s targets a column outside the join", e)
		}
		for _, row := range g.Joined.TuplesFromBase(e.Table, e.Row) {
			t, ok := modified[row]
			if !ok {
				t = g.Joined.Rel.Tuples[row].Clone()
			}
			t[colIdx] = e.Value
			modified[row] = t
		}
	}
	return modified, nil
}
