package dbgen

import (
	"reflect"
	"runtime"
	"testing"

	"qfe/internal/evalcache"
)

// withParallelism returns deterministic (pair-budgeted) options at the given
// worker count, each run with a private cache so hits from one run cannot
// mask evaluation differences in the other.
func withParallelism(p int) Options {
	o := testOptions()
	o.Parallelism = p
	o.Cache = evalcache.New(1024)
	return o
}

// TestSkylinePairsParallelMatchesSerial asserts that the parallel skyline
// enumeration reproduces the serial one exactly — same pairs in the same
// order, same statistics — when the budget does not truncate. Run under
// -race this also exercises the worker pool for data races.
func TestSkylinePairsParallelMatchesSerial(t *testing.T) {
	d, j, qc, r := example11(t)
	serial, err := New(d, j, qc, r, withParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	spS, statsS := serial.SkylinePairs()

	for _, p := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
		parallel, err := New(d, j, qc, r, withParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		spP, statsP := parallel.SkylinePairs()
		if !reflect.DeepEqual(spS, spP) {
			t.Errorf("parallelism %d: skyline differs\nserial:   %v\nparallel: %v", p, spS, spP)
		}
		if statsS != statsP {
			t.Errorf("parallelism %d: stats differ: serial %+v, parallel %+v", p, statsS, statsP)
		}
	}
}

// TestPickSubsetsParallelMatchesSerial asserts Algorithm 4 returns the same
// ranked candidate sets at every parallelism level — the pipelined
// enumerate → score → replay stages must be invisible to results — including
// when the evaluation budget truncates the search mid-level (the budget cuts
// enumeration, so a pipeline that scored eagerly past the cut would diverge).
func TestPickSubsetsParallelMatchesSerial(t *testing.T) {
	d, j, qc, r := example11(t)
	for _, maxEval := range []int{0, 7, 2} { // 0 = uncapped; small caps truncate
		serial, err := New(d, j, qc, r, withParallelism(1))
		if err != nil {
			t.Fatal(err)
		}
		serial.Opts.MaxSetsEvaluated = maxEval
		spS, statsS := serial.SkylinePairs()
		setsS := serial.PickSubsets(spS, statsS.X)

		for _, p := range []int{2, 4, 8} {
			parallel, err := New(d, j, qc, r, withParallelism(p))
			if err != nil {
				t.Fatal(err)
			}
			parallel.Opts.MaxSetsEvaluated = maxEval
			spP, statsP := parallel.SkylinePairs()
			setsP := parallel.PickSubsets(spP, statsP.X)

			if !reflect.DeepEqual(setsS, setsP) {
				t.Errorf("maxEval %d parallelism %d: candidate sets differ\nserial:   %+v\nparallel: %+v",
					maxEval, p, setsS, setsP)
			}
		}
	}
}

// TestGenerateParallelMatchesSerial runs the whole Algorithm 2 pipeline at
// worker counts 2, 4, 8 and GOMAXPROCS against the serial reference and
// compares everything deterministic about the result: edits, partition,
// result-relation fingerprints and costs. This is the end-to-end half of
// the determinism matrix — the per-stage halves live in the skyline and
// PickSubsets tests above.
func TestGenerateParallelMatchesSerial(t *testing.T) {
	d, j, qc, r := example11(t)
	serial, err := New(d, j, qc, r, withParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	resS, err := serial.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
		parallel, err := New(d, j, qc, r, withParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		resP, err := parallel.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resS.Edits, resP.Edits) {
			t.Errorf("parallelism %d: edits differ: %v vs %v", p, resS.Edits, resP.Edits)
		}
		if !reflect.DeepEqual(resS.Partition, resP.Partition) {
			t.Errorf("parallelism %d: partitions differ: %v vs %v", p, resS.Partition, resP.Partition)
		}
		if len(resS.Results) != len(resP.Results) {
			t.Fatalf("parallelism %d: result counts differ: %d vs %d",
				p, len(resS.Results), len(resP.Results))
		}
		for i := range resS.Results {
			if resS.Results[i].Fingerprint() != resP.Results[i].Fingerprint() {
				t.Errorf("parallelism %d: result %d differs:\n%v\nvs\n%v",
					p, i, resS.Results[i], resP.Results[i])
			}
		}
		if resS.DBCost != resP.DBCost || resS.ResultCost != resP.ResultCost {
			t.Errorf("parallelism %d: costs differ: (%d,%d) vs (%d,%d)",
				p, resS.DBCost, resS.ResultCost, resP.DBCost, resP.ResultCost)
		}
	}
}

// TestEvaluateBaseUsesCache verifies that a second generator over the same
// join and queries answers its base evaluations from the cache.
func TestEvaluateBaseUsesCache(t *testing.T) {
	d, j, qc, r := example11(t)
	opts := testOptions()
	opts.Cache = evalcache.New(256)
	if _, err := New(d, j, qc, r, opts); err != nil {
		t.Fatal(err)
	}
	before := opts.Cache.Stats()
	if before.Hits != 0 {
		t.Fatalf("unexpected hits on first build: %+v", before)
	}
	g2, err := New(d, j, qc, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	after := opts.Cache.Stats()
	if after.Hits < uint64(len(qc)) {
		t.Errorf("second build hit %d times, want >= %d", after.Hits, len(qc))
	}
	// Cached results must still be correct.
	for i, q := range qc {
		direct, err := q.EvaluateOnJoined(j.Rel)
		if err != nil {
			t.Fatal(err)
		}
		if g2.baseResults[i].Fingerprint() != direct.Fingerprint() {
			t.Errorf("cached base result for %s differs from direct evaluation", q.Name)
		}
	}
}
