package dbgen

import (
	"math"
	"time"

	"qfe/internal/cost"
	"qfe/internal/tupleclass"
)

// ScoredPair is an (STC, DTC) pair with its single-pair partition statistics
// cached for Algorithm 4.
type ScoredPair struct {
	Pair    tupleclass.Pair
	Balance float64
	Sizes   []int
}

// SkylineStats reports Algorithm 3's enumeration effort and the Lemma 3.1
// quantity x extracted along the way.
type SkylineStats struct {
	Enumerated int
	X          int
	Truncated  bool // budget exhausted before the full space was covered
}

// SkylinePairs implements Algorithm 3 (Skyline-STC-DTC-Pairs): it enumerates
// (STC, DTC) pairs in non-descending edit cost (i = 1..n changed
// attributes), keeping for each level the pairs whose single-pair balance
// score matches the best seen so far. Enumeration stops when the δ budget is
// exhausted, returning the skyline discovered so far (the paper's behaviour
// under the time threshold).
//
// The most balanced *binary* partitioning observed supplies x (Lemma 3.1)
// for the iteration-count estimate used by Algorithm 4's cost evaluations.
func (g *Generator) SkylinePairs() ([]ScoredPair, SkylineStats) {
	start := time.Now()
	var (
		sp         []ScoredPair
		minBalance = math.Inf(1)
		stats      SkylineStats
		bestBinary = math.Inf(1)
	)
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n; i++ {
		var spi []ScoredPair
		done := false
		for _, sc := range g.srcClasses {
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				stats.Enumerated++
				p := tupleclass.NewPair(sc.Class, dst)
				sizes := g.Space.PartitionSizes([]tupleclass.Pair{p})
				b := cost.Balance(sizes)
				if len(sizes) == 2 {
					bb := b
					if bb < bestBinary {
						bestBinary = bb
						x := sizes[0]
						if sizes[1] < x {
							x = sizes[1]
						}
						stats.X = x
					}
				}
				switch {
				case b < minBalance:
					minBalance = b
					spi = []ScoredPair{{Pair: p, Balance: b, Sizes: sizes}}
				case b == minBalance && !math.IsInf(b, 1):
					spi = append(spi, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
				}
				if g.Opts.Budget.exceeded(start, stats.Enumerated) {
					done = true
					return false
				}
				return true
			})
			if done {
				break
			}
		}
		sp = append(sp, spi...)
		if done {
			stats.Truncated = true
			break
		}
	}
	return sp, stats
}

// anySplittingPairs scans the pair space without a budget and returns up to
// max pairs with a finite balance (i.e. that split QC at all). It is the
// fallback when the budgeted skyline comes back empty.
func (g *Generator) anySplittingPairs(max int) []ScoredPair {
	var out []ScoredPair
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n && len(out) < max; i++ {
		for _, sc := range g.srcClasses {
			if len(out) >= max {
				break
			}
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				p := tupleclass.NewPair(sc.Class, dst)
				sizes := g.Space.PartitionSizes([]tupleclass.Pair{p})
				b := cost.Balance(sizes)
				if !math.IsInf(b, 1) {
					out = append(out, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
				}
				return len(out) < max
			})
		}
	}
	return out
}

// EnumerateScoredPairs collects up to maxPairs splitting pairs regardless of
// skyline membership, in deterministic order. It exists for the |SP|
// scalability experiment (paper Table 5), which feeds Algorithm 4 with
// artificially enlarged skyline sets.
func (g *Generator) EnumerateScoredPairs(maxPairs int) []ScoredPair {
	var out []ScoredPair
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n; i++ {
		for _, sc := range g.srcClasses {
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				p := tupleclass.NewPair(sc.Class, dst)
				sizes := g.Space.PartitionSizes([]tupleclass.Pair{p})
				b := cost.Balance(sizes)
				if !math.IsInf(b, 1) {
					out = append(out, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
				}
				return maxPairs <= 0 || len(out) < maxPairs
			})
			if maxPairs > 0 && len(out) >= maxPairs {
				return out
			}
		}
	}
	return out
}
