package dbgen

import (
	"math"
	"sync/atomic"
	"time"

	"qfe/internal/cost"
	"qfe/internal/par"
	"qfe/internal/tupleclass"
)

// ScoredPair is an (STC, DTC) pair with its single-pair partition statistics
// cached for Algorithm 4.
type ScoredPair struct {
	Pair    tupleclass.Pair
	Balance float64
	Sizes   []int
}

// SkylineStats reports Algorithm 3's enumeration effort and the Lemma 3.1
// quantity x extracted along the way.
type SkylineStats struct {
	Enumerated int
	X          int
	Truncated  bool // budget exhausted before the full space was covered
}

// SkylinePairs implements Algorithm 3 (Skyline-STC-DTC-Pairs): it enumerates
// (STC, DTC) pairs in non-descending edit cost (i = 1..n changed
// attributes), keeping for each level the pairs whose single-pair balance
// score matches the best seen so far. Enumeration stops when the δ budget is
// exhausted, returning the skyline discovered so far (the paper's behaviour
// under the time threshold).
//
// The most balanced *binary* partitioning observed supplies x (Lemma 3.1)
// for the iteration-count estimate used by Algorithm 4's cost evaluations.
//
// With Parallelism != 1 the source classes of each level are enumerated
// concurrently and their per-class skylines merged in class order, which
// yields exactly the serial skyline (same pairs, same order, same stats)
// whenever the budget does not truncate enumeration. Under a truncating
// budget the cut-off point depends on scheduling, just as a time-based
// budget already depends on the machine; Parallelism = 1 remains the
// deterministic reference.
func (g *Generator) SkylinePairs() ([]ScoredPair, SkylineStats) {
	workers := par.Workers(g.Opts.Parallelism)
	if workers <= 1 || len(g.srcClasses) <= 1 {
		return g.skylineSerial()
	}
	return g.skylineParallel(workers)
}

// skylineAcc accumulates Algorithm 3's running-minimum state. The serial
// sweep keeps one accumulator for the whole enumeration; the parallel path
// keeps one per (level, source class) and folds them into a level
// accumulator in class order. Both paths score pairs through the same
// observe method, so the selection rule cannot diverge between them.
type skylineAcc struct {
	pairs      []ScoredPair // pairs at minBalance, in enumeration order
	minBalance float64
	bestBinary float64 // best balance among binary partitions seen
	x          int     // Lemma 3.1's x, from the first bestBinary achiever
	enumerated int
}

func newSkylineAcc() skylineAcc {
	return skylineAcc{minBalance: math.Inf(1), bestBinary: math.Inf(1)}
}

// observe applies one enumerated pair: keep it if it ties the running
// minimum balance, restart the skyline if it strictly improves it, and
// extract x from the most balanced binary partition seen so far.
func (a *skylineAcc) observe(p tupleclass.Pair, sizes []int, b float64) {
	a.enumerated++
	if len(sizes) == 2 && b < a.bestBinary {
		a.bestBinary = b
		x := sizes[0]
		if sizes[1] < x {
			x = sizes[1]
		}
		a.x = x
	}
	switch {
	case b < a.minBalance:
		a.minBalance = b
		a.pairs = []ScoredPair{{Pair: p, Balance: b, Sizes: sizes}}
	case b == a.minBalance && !math.IsInf(b, 1):
		a.pairs = append(a.pairs, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
	}
}

// merge folds a class-local accumulator into the level accumulator, in
// class order — the same rule observe applies pair by pair: a class whose
// local minimum strictly improves the running minimum resets the level
// skyline, a tie appends in order.
func (a *skylineAcc) merge(local *skylineAcc) {
	a.enumerated += local.enumerated
	if local.bestBinary < a.bestBinary {
		a.bestBinary = local.bestBinary
		a.x = local.x
	}
	switch {
	case local.minBalance < a.minBalance:
		a.minBalance = local.minBalance
		a.pairs = append(a.pairs[:0:0], local.pairs...)
	case local.minBalance == a.minBalance && !math.IsInf(local.minBalance, 1):
		a.pairs = append(a.pairs, local.pairs...)
	}
}

// drain returns the pairs collected since the last drain (one level's
// skyline) and clears them, keeping the running minima for the next level.
func (a *skylineAcc) drain() []ScoredPair {
	pairs := a.pairs
	a.pairs = nil
	return pairs
}

// score computes one (src, dst) pair's single-pair partition statistics.
// It runs once per enumerated (STC, DTC) pair, so it uses the allocation-
// free single-pair partitioner.
func (g *Generator) score(src, dst tupleclass.Class) (tupleclass.Pair, []int, float64) {
	p := tupleclass.NewPair(src, dst)
	sizes := g.Space.PartitionSizes1(p)
	return p, sizes, cost.Balance(sizes)
}

func (g *Generator) skylineSerial() ([]ScoredPair, SkylineStats) {
	start := time.Now()
	var (
		sp    []ScoredPair
		stats SkylineStats
		acc   = newSkylineAcc()
	)
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n; i++ {
		done := false
		for _, sc := range g.srcClasses {
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				p, sizes, b := g.score(sc.Class, dst)
				acc.observe(p, sizes, b)
				if g.Opts.Budget.exceeded(start, acc.enumerated) {
					done = true
					return false
				}
				return true
			})
			if done {
				break
			}
		}
		sp = append(sp, acc.drain()...)
		if done {
			stats.Truncated = true
			break
		}
	}
	stats.Enumerated = acc.enumerated
	stats.X = acc.x
	return sp, stats
}

func (g *Generator) skylineParallel(workers int) ([]ScoredPair, SkylineStats) {
	start := time.Now()
	var (
		sp         []ScoredPair
		stats      SkylineStats
		acc        = newSkylineAcc()
		enumerated atomic.Int64
		exhausted  atomic.Bool
	)
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n; i++ {
		locals := make([]skylineAcc, len(g.srcClasses))
		par.Do(len(g.srcClasses), workers, func(ci int) {
			local := &locals[ci]
			*local = newSkylineAcc()
			if exhausted.Load() {
				return
			}
			g.Space.EnumerateClassesAt(g.srcClasses[ci].Class, i, func(dst tupleclass.Class) bool {
				total := enumerated.Add(1)
				p, sizes, b := g.score(g.srcClasses[ci].Class, dst)
				local.observe(p, sizes, b)
				if g.Opts.Budget.exceeded(start, int(total)) {
					exhausted.Store(true)
					return false
				}
				return !exhausted.Load()
			})
		})
		for ci := range locals {
			acc.merge(&locals[ci])
		}
		sp = append(sp, acc.drain()...)
		if exhausted.Load() {
			stats.Truncated = true
			break
		}
	}
	stats.Enumerated = acc.enumerated
	stats.X = acc.x
	return sp, stats
}

// anySplittingPairs scans the pair space without a budget and returns up to
// max pairs with a finite balance (i.e. that split QC at all). It is the
// fallback when the budgeted skyline comes back empty.
func (g *Generator) anySplittingPairs(max int) []ScoredPair {
	var out []ScoredPair
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n && len(out) < max; i++ {
		for _, sc := range g.srcClasses {
			if len(out) >= max {
				break
			}
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				p := tupleclass.NewPair(sc.Class, dst)
				sizes := g.Space.PartitionSizes1(p)
				b := cost.Balance(sizes)
				if !math.IsInf(b, 1) {
					out = append(out, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
				}
				return len(out) < max
			})
		}
	}
	return out
}

// EnumerateScoredPairs collects up to maxPairs splitting pairs regardless of
// skyline membership, in deterministic order. It exists for the |SP|
// scalability experiment (paper Table 5), which feeds Algorithm 4 with
// artificially enlarged skyline sets.
func (g *Generator) EnumerateScoredPairs(maxPairs int) []ScoredPair {
	var out []ScoredPair
	n := g.Space.NumPredicateAttrs()
	for i := 1; i <= n; i++ {
		for _, sc := range g.srcClasses {
			g.Space.EnumerateClassesAt(sc.Class, i, func(dst tupleclass.Class) bool {
				p := tupleclass.NewPair(sc.Class, dst)
				sizes := g.Space.PartitionSizes1(p)
				b := cost.Balance(sizes)
				if !math.IsInf(b, 1) {
					out = append(out, ScoredPair{Pair: p, Balance: b, Sizes: sizes})
				}
				return maxPairs <= 0 || len(out) < maxPairs
			})
			if maxPairs > 0 && len(out) >= maxPairs {
				return out
			}
		}
	}
	return out
}
