package dbgen

import (
	"reflect"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

// checkBaseResultsMatchScalar compares a generator's batch-computed base
// results against per-query scalar evaluation — the batch engine's
// differential oracle at the dbgen integration layer.
func checkBaseResultsMatchScalar(t *testing.T, g *Generator) {
	t.Helper()
	for i, q := range g.Queries {
		ref := q
		if q.Distinct {
			bag := q.Clone()
			bag.Distinct = false
			ref = bag
		}
		direct, err := ref.EvaluateOnJoined(g.Joined.Rel)
		if err != nil {
			t.Fatal(err)
		}
		got := g.baseResults[i]
		if got.Name != direct.Name || got.Len() != direct.Len() {
			t.Fatalf("query %s: base result shape differs: %q/%d vs %q/%d",
				q.Name, got.Name, got.Len(), direct.Name, direct.Len())
		}
		for ti := range got.Tuples {
			if !got.Tuples[ti].Equal(direct.Tuples[ti]) {
				t.Fatalf("query %s tuple %d: %v vs %v", q.Name, ti,
					got.Tuples[ti], direct.Tuples[ti])
			}
		}
	}
}

// TestEvaluateBaseBatchMatchesScalar asserts the batched, cache-subtracted
// base evaluation is byte-identical to the scalar reference, with and
// without forced hash collisions (which stress the columnar dictionary and
// the selection-vector dedup verification).
func TestEvaluateBaseBatchMatchesScalar(t *testing.T) {
	for _, bits := range []int{0, 2} {
		relation.ForceHashCollisionsForTesting(bits)
		d, j, qc, r := example11(t)
		opts := testOptions()
		opts.Cache = nil
		g, err := New(d, j, qc, r, opts)
		if err != nil {
			relation.ForceHashCollisionsForTesting(0)
			t.Fatal(err)
		}
		checkBaseResultsMatchScalar(t, g)
		relation.ForceHashCollisionsForTesting(0)
	}
}

// TestPartitionConcreteBatchMatchesScalar drives one concrete partitioning
// through the batch delta path and cross-checks every query's delta and
// fingerprint against the scalar DeltaOnJoined / DeltaFingerprint pair.
func TestPartitionConcreteBatchMatchesScalar(t *testing.T) {
	d, j, qc, r := example11(t)
	opts := testOptions()
	g, err := New(d, j, qc, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	modified, err := g.modifiedJoinedRows(res.Edits)
	if err != nil {
		t.Fatal(err)
	}
	batchDeltas, err := algebra.BatchDeltaOnJoined(g.Queries, g.Joined.Rel, modified)
	if err != nil {
		t.Fatal(err)
	}
	_, fps := algebra.BatchApplyDelta(g.Queries, g.baseResults, batchDeltas, make([]bool, len(g.Queries)))
	for qi, q := range g.Queries {
		scalar, err := q.DeltaOnJoined(g.Joined.Rel, modified)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batchDeltas[qi], scalar) {
			t.Errorf("query %s: batch delta %+v, scalar %+v", q.Name, batchDeltas[qi], scalar)
		}
		if want := q.DeltaFingerprint(g.baseResults[qi], scalar); fps[qi] != want {
			t.Errorf("query %s: batch fingerprint %v, scalar %v", q.Name, fps[qi], want)
		}
	}
}

// TestGenerateDeterministicAcrossWorkerCounts runs the full Algorithm 2
// pipeline — now routed through the batch engine — at several worker counts
// and requires bit-identical outcomes. Under -race this doubles as the
// batch engine's concurrency test.
func TestGenerateDeterministicAcrossWorkerCounts(t *testing.T) {
	d, j, qc, r := example11(t)
	ref, err := New(d, j, qc, r, withParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		g, err := New(d, j, qc, r, withParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Edits, want.Edits) {
			t.Errorf("workers %d: edits differ: %v vs %v", workers, got.Edits, want.Edits)
		}
		if !reflect.DeepEqual(got.Partition, want.Partition) {
			t.Errorf("workers %d: partitions differ: %v vs %v", workers, got.Partition, want.Partition)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("workers %d: result counts differ", workers)
		}
		for i := range got.Results {
			if got.Results[i].Fingerprint() != want.Results[i].Fingerprint() {
				t.Errorf("workers %d: result %d differs", workers, i)
			}
		}
	}
}
