package dbgen

import (
	"fmt"
	"sort"

	"qfe/internal/db"
	"qfe/internal/tupleclass"
)

// concretize maps an abstract pair set onto actual cell edits: each (s, d)
// pair picks a concrete joined tuple of class s and rewrites the changed
// attributes' base cells to d's representative values. Tuples are chosen to
// minimise join side effects (§5.4.1) and edits violating the database's
// integrity constraints are rejected (§6.3). Pairs that cannot be realised
// are dropped; if nothing survives an error is returned.
func (g *Generator) concretize(pairs []tupleclass.Pair) (*Result, error) {
	work := g.DB.Clone()
	var (
		edits      []db.CellEdit
		usedPairs  []tupleclass.Pair
		usedJoined = map[int]bool{}
		usedBase   = map[string]bool{}
	)

	for _, p := range pairs {
		rows := g.srcRows[p.Src.Key()]
		if len(rows) == 0 {
			continue
		}
		// Rank candidate rows: fewer side effects first, then row order.
		type cand struct{ row, badness int }
		cands := make([]cand, 0, len(rows))
		for _, r := range rows {
			if usedJoined[r] {
				continue
			}
			cands = append(cands, cand{row: r, badness: g.sideEffectBadness(r, p)})
		}
		sort.SliceStable(cands, func(a, b int) bool {
			if cands[a].badness != cands[b].badness {
				return cands[a].badness < cands[b].badness
			}
			return cands[a].row < cands[b].row
		})

		for _, c := range cands {
			rowEdits := g.editsForRow(c.row, p)
			if conflictsBase(rowEdits, usedBase) {
				continue
			}
			if !applyValid(work, rowEdits) {
				continue
			}
			for _, e := range rowEdits {
				usedBase[baseKey(e.Table, e.Row)] = true
			}
			usedJoined[c.row] = true
			edits = append(edits, rowEdits...)
			usedPairs = append(usedPairs, p)
			break
		}
	}
	if len(edits) == 0 {
		return nil, errNotRealizable
	}

	parts, results, resultCosts, err := g.partitionConcrete(edits)
	if err != nil {
		return nil, err
	}
	res := &Result{
		DB:           work,
		Edits:        edits,
		Pairs:        usedPairs,
		Partition:    parts,
		Results:      results,
		DBCost:       len(edits),
		NumRelations: db.ModifiedRelations(edits),
	}
	for _, c := range resultCosts {
		res.ResultCost += c
	}
	if len(parts) > 0 {
		res.AvgResultCost = float64(res.ResultCost) / float64(len(parts))
	}
	return res, nil
}

// editsForRow builds the cell edits realising pair p on joined row `row`.
func (g *Generator) editsForRow(row int, p tupleclass.Pair) []db.CellEdit {
	prov := g.Joined.Prov[row]
	var edits []db.CellEdit
	for _, a := range p.ChangedAttrs() {
		part := g.Space.Parts[a]
		ref := g.Joined.Cols[part.Col]
		edits = append(edits, db.CellEdit{
			Table:  ref.Table,
			Row:    prov[ref.TableIdx],
			Column: ref.Column,
			Value:  part.Subsets[p.Dst[a]].Rep,
		})
	}
	return edits
}

// sideEffectBadness counts how many *other* joined tuples a modification of
// this row would drag along: the sum over edited base rows of (fan-out − 1).
func (g *Generator) sideEffectBadness(row int, p tupleclass.Pair) int {
	prov := g.Joined.Prov[row]
	seen := map[string]bool{}
	badness := 0
	for _, a := range p.ChangedAttrs() {
		ref := g.Joined.Cols[g.Space.Parts[a].Col]
		k := baseKey(ref.Table, prov[ref.TableIdx])
		if seen[k] {
			continue
		}
		seen[k] = true
		badness += g.Joined.FanOut(ref.Table, prov[ref.TableIdx]) - 1
	}
	return badness
}

func baseKey(table string, row int) string { return fmt.Sprintf("%s|%d", table, row) }

func conflictsBase(edits []db.CellEdit, used map[string]bool) bool {
	for _, e := range edits {
		if used[baseKey(e.Table, e.Row)] {
			return true
		}
	}
	return false
}

// applyValid applies the edits to the working database in place if and only
// if the result satisfies every declared constraint; otherwise it reverts
// and reports false.
func applyValid(work *db.Database, edits []db.CellEdit) bool {
	var undo []saved
	for _, e := range edits {
		t := work.Table(e.Table)
		if t == nil || e.Row < 0 || e.Row >= t.Len() {
			revert(work, undo)
			return false
		}
		ci := t.Schema.IndexOf(e.Column)
		if ci < 0 {
			revert(work, undo)
			return false
		}
		undo = append(undo, saved{e: e, old: db.CellEdit{
			Table: e.Table, Row: e.Row, Column: e.Column, Value: t.Tuples[e.Row][ci]}})
		t.Tuples[e.Row][ci] = e.Value
	}
	if err := work.Validate(); err != nil {
		revert(work, undo)
		return false
	}
	return true
}

func revert(work *db.Database, undo []saved) {
	for i := len(undo) - 1; i >= 0; i-- {
		s := undo[i]
		t := work.Table(s.old.Table)
		ci := t.Schema.IndexOf(s.old.Column)
		t.Tuples[s.old.Row][ci] = s.old.Value
	}
}

// saved is declared at package scope for revert's signature.
type saved struct {
	e   db.CellEdit
	old db.CellEdit
}
