// Package simulate drives full QFE sessions over a scenario stream at
// configurable concurrency — the load harness the production service is
// measured against. Each scenario (internal/scenario) supplies (D, R,
// target); the harness reverse-engineers candidates with internal/qbo
// (injecting the target so convergence is well-defined), runs the winnowing
// session either in-process via core.Session or over HTTP against
// qfe-server, answers rounds with a pluggable feedback policy
// (internal/feedback: target, worst-case, noisy, abandoning), and checks
// per-session invariants:
//
//   - the target's result is among the presented results of every round of
//     the target's join-schema group (it must survive winnowing), and
//   - the converged class in the target's group contains the target, and a
//     uniquely identified same-group query is result-equivalent to the
//     target on D and on N freshly generated databases over the same schema
//     — a metamorphic differential oracle that turns every generated
//     scenario into a correctness test of the whole engine. Surviving
//     queries that fresh data *can* tell apart from the target are counted
//     as divergence: the residual ambiguity perfect feedback over one
//     database cannot remove (see checkOutcome).
//
// All time is read through one injectable clock, so latency percentiles are
// testable without sleeping. Scenario-level concurrency uses the shared
// internal/par worker pool; the per-session engine runs serially
// (Parallelism 1) with a deterministic pair budget, which makes every
// deterministic report field reproducible bit-for-bit across runs and
// worker counts.
package simulate

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"qfe/internal/algebra"
	"qfe/internal/core"
	"qfe/internal/db"
	"qfe/internal/dbgen"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
	"qfe/internal/par"
	"qfe/internal/qbo"
	"qfe/internal/relation"
	"qfe/internal/scenario"
)

// Policy selects the automated feedback source.
type Policy string

// Supported policies.
const (
	// PolicyTarget always picks the subset containing the target (§7's
	// "automated result feedback"). Invariant checking runs under it.
	PolicyTarget Policy = "target"
	// PolicyWorst picks the largest subset (§7 worst-case behaviour).
	PolicyWorst Policy = "worst"
	// PolicyNoisy follows the target but flips to a wrong answer with
	// probability NoiseRate (seeded per session).
	PolicyNoisy Policy = "noisy"
	// PolicyAbandon follows the target for AbandonAfter rounds, then walks
	// away; the session counts as abandoned.
	PolicyAbandon Policy = "abandon"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyTarget, PolicyWorst, PolicyNoisy, PolicyAbandon:
		return Policy(s), nil
	}
	return "", fmt.Errorf("simulate: unknown policy %q (want target, worst, noisy or abandon)", s)
}

// Options tunes a simulation run. Zero values select defaults.
type Options struct {
	// Workers sets scenario-level concurrency (internal/par semantics:
	// 0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Policy selects the feedback source; default PolicyTarget.
	Policy Policy
	// NoiseRate is PolicyNoisy's flip probability, used exactly as given
	// (0 = a noisy oracle that never errs; the CLI defaults it to 0.1) and
	// NoiseSeed its base seed (per-session streams are derived from it).
	NoiseRate float64
	// AbandonAfter is PolicyAbandon's patience in rounds, used exactly as
	// given (0 abandons on the first round; the CLI defaults it to 2).
	AbandonAfter int
	NoiseSeed    int64
	// FreshDBs is the number of freshly generated databases the
	// differential oracle evaluates per generated scenario, used exactly as
	// given (0 checks on D only — always the case for curated scenarios;
	// the CLI defaults it to 2).
	FreshDBs int
	// MaxCandidates bounds qbo candidate generation per scenario
	// (default 16).
	MaxCandidates int
	// NoInjectTarget disables adding the target query to the candidate set
	// when qbo did not derive it. Injection is on by default: with the
	// target present, target-policy convergence is an engine invariant
	// rather than a property of qbo's search budget.
	NoInjectTarget bool
	// DisableInvariants turns invariant checking off even under
	// PolicyTarget (it is off automatically for other policies, which
	// intentionally deviate from the target, and for HTTP runs, where the
	// server builds its own candidate set so the target may be absent).
	DisableInvariants bool
	// Core overrides the session configuration. The zero value selects
	// DefaultCoreConfig (serial engine, deterministic pair budget).
	Core *core.Config
	// Server, when set (e.g. "http://127.0.0.1:8080"), drives sessions over
	// the qfe-server HTTP API instead of in-process.
	Server string
	// HTTPTimeout bounds each HTTP call (default 30s).
	HTTPTimeout time.Duration
	// Clock substitutes time.Now; every latency and wall-time measurement
	// in the run reads it, so tests inject a fake clock instead of
	// sleeping.
	Clock func() time.Time
}

// DefaultCoreConfig is the harness's session configuration: the engine's
// defaults with the time-based δ budget replaced by a deterministic
// pair-count budget, and all intra-session parallel loops forced serial.
// Concurrency comes from running many sessions at once; determinism of each
// session is what makes simulation reports reproducible from their seed.
func DefaultCoreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Gen.Budget = dbgen.Budget{MaxPairs: 100000}
	cfg.Parallelism = 1
	cfg.Gen.Parallelism = 1
	return cfg
}

// Runner executes simulation runs. Create with New.
type Runner struct {
	opts    Options
	coreCfg core.Config
	cache   *evalcache.Cache
	clock   func() time.Time
}

// New validates options and prepares a runner with its own evaluation
// cache, so cache hit rates in in-process reports reflect this run alone.
// (HTTP reports instead carry the server's lifetime /stats counters — a
// remote server's cache cannot be scoped to one client run.)
func New(opts Options) (*Runner, error) {
	if opts.Policy == "" {
		opts.Policy = PolicyTarget
	}
	if _, err := ParsePolicy(string(opts.Policy)); err != nil {
		return nil, err
	}
	if opts.NoiseRate < 0 || opts.NoiseRate > 1 {
		return nil, fmt.Errorf("simulate: noise rate %v outside [0, 1]", opts.NoiseRate)
	}
	if opts.FreshDBs < 0 {
		return nil, fmt.Errorf("simulate: negative fresh-database count %d", opts.FreshDBs)
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 16
	}
	if opts.HTTPTimeout <= 0 {
		opts.HTTPTimeout = 30 * time.Second
	}
	r := &Runner{opts: opts, clock: opts.Clock}
	if r.clock == nil {
		r.clock = time.Now
	}
	if opts.Core != nil {
		r.coreCfg = *opts.Core
	} else {
		r.coreCfg = DefaultCoreConfig()
	}
	r.cache = evalcache.New(0)
	if r.coreCfg.Gen.Cache == nil || opts.Core == nil {
		r.coreCfg.Gen.Cache = r.cache
	} else {
		r.cache = r.coreCfg.Gen.Cache
	}
	return r, nil
}

// Run simulates every scenario of the corpus and returns the aggregated
// report. Scenario order in the report matches corpus order regardless of
// worker scheduling.
func (r *Runner) Run(corpus []*scenario.Scenario) (*Report, error) {
	if len(corpus) == 0 {
		return nil, errors.New("simulate: empty corpus")
	}
	rep := &Report{
		Policy:   string(r.opts.Policy),
		Workers:  par.Workers(r.opts.Workers),
		Server:   r.opts.Server,
		FreshDBs: r.opts.FreshDBs,
		// Injection only exists in-process; the HTTP server derives its own
		// candidate set, so an HTTP report must not claim the target was
		// guaranteed present.
		InjectTarget: !r.opts.NoInjectTarget && r.opts.Server == "",
	}
	results := make([]SessionResult, len(corpus))
	var inFlight, peak atomic.Int64
	t0 := r.clock()
	par.Do(len(corpus), par.Workers(r.opts.Workers), func(i int) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		results[i] = r.runOne(corpus[i], i)
		inFlight.Add(-1)
	})
	wall := r.clock().Sub(t0)
	cache := r.cache.Stats()
	if r.opts.Server != "" {
		if st, err := r.serverCacheStats(); err == nil {
			cache = st
		}
	}
	rep.aggregate(results, wall, int(peak.Load()), cache)
	return rep, nil
}

// runOne drives a single scenario to completion.
func (r *Runner) runOne(sc *scenario.Scenario, idx int) SessionResult {
	res := SessionResult{Name: sc.Name, Kind: sc.Kind}
	if r.opts.Server != "" {
		r.runHTTP(sc, idx, &res)
		return res
	}
	r.runInProcess(sc, idx, &res)
	return res
}

// candidates builds the scenario's candidate set: qbo's reverse-engineered
// queries, plus the target itself unless disabled or already found.
func (r *Runner) candidates(sc *scenario.Scenario) ([]*algebra.Query, error) {
	qcfg := qbo.DefaultConfig()
	qcfg.MaxCandidates = r.opts.MaxCandidates
	qcfg.Cache = r.cache
	qc, err := qbo.Generate(sc.DB, sc.R, qcfg)
	if err != nil {
		return nil, err
	}
	if !r.opts.NoInjectTarget {
		present := false
		for _, q := range qc {
			if q.Key() == sc.Target.Key() {
				present = true
				break
			}
		}
		if !present {
			t := sc.Target.Clone()
			t.Name = "target"
			qc = append(qc, t)
		}
	}
	if len(qc) == 0 {
		return nil, errors.New("simulate: no candidate queries")
	}
	return qc, nil
}

// oracleFor builds the per-session feedback oracle.
func (r *Runner) oracleFor(sc *scenario.Scenario, idx int) feedback.Oracle {
	target := feedback.Target{Query: sc.Target}
	switch r.opts.Policy {
	case PolicyWorst:
		return feedback.WorstCase{}
	case PolicyNoisy:
		return feedback.NewNoisy(target, r.opts.NoiseRate, r.opts.NoiseSeed+int64(idx)*1_000_003)
	case PolicyAbandon:
		return &feedback.Abandoning{Inner: target, After: r.opts.AbandonAfter}
	default:
		return target
	}
}

// checkInvariants reports whether this run asserts the target-survival and
// differential-oracle invariants.
func (r *Runner) checkInvariants() bool {
	return r.opts.Policy == PolicyTarget && r.opts.Server == "" && !r.opts.DisableInvariants
}

// runInProcess steps a core.Session to completion, measuring each engine
// step (Start / Feedback) through the runner's clock.
func (r *Runner) runInProcess(sc *scenario.Scenario, idx int, res *SessionResult) {
	t0 := r.clock()
	qc, err := r.candidates(sc)
	res.qgen = r.clock().Sub(t0)
	if err != nil {
		res.Error = err.Error()
		return
	}
	res.Candidates = len(qc)
	sess, err := core.NewStepSession(sc.DB, sc.R, qc, r.coreCfg)
	if err != nil {
		res.Error = err.Error()
		return
	}
	oracle := r.oracleFor(sc, idx)

	tr := r.clock()
	round, err := sess.Start()
	res.latencies = append(res.latencies, r.clock().Sub(tr))
	if err != nil {
		res.Error = err.Error()
		return
	}
	for round != nil {
		res.Rounds++
		if r.checkInvariants() {
			r.checkRound(sc, round, res)
		}
		choice, ok, err := oracle.Choose(round.View)
		if errors.Is(err, feedback.ErrAbandoned) {
			res.Abandoned = true
			return
		}
		if err != nil {
			res.Error = err.Error()
			return
		}
		if !ok {
			choice = core.NoneOfThese
		}
		tr = r.clock()
		round, _, err = sess.Feedback(choice)
		res.latencies = append(res.latencies, r.clock().Sub(tr))
		if err != nil {
			res.Error = err.Error()
			return
		}
	}
	out, done := sess.Outcome()
	if !done {
		res.Error = "simulate: session stopped without outcome"
		return
	}
	res.Converged = out.Found
	res.Identified = out.Query != nil
	res.Ambiguous = out.Ambiguous
	r.checkOutcome(sc, out.Found, out.Query, out.Remaining, res)
}

// checkRound asserts the target-survival invariant on one presented round:
// within the target's own join-schema group, the target's result on D'
// must be among the presented results (rounds for other groups legitimately
// exclude it — that is §6.2's group-by-group winnowing).
func (r *Runner) checkRound(sc *scenario.Scenario, round *core.Round, res *SessionResult) {
	if len(round.View.Queries) == 0 ||
		round.View.Queries[0].JoinSchemaKey() != sc.Target.JoinSchemaKey() {
		return
	}
	_, ok, err := feedback.Target{Query: sc.Target}.Choose(round.View)
	if err != nil {
		res.Violations = append(res.Violations,
			fmt.Sprintf("round %d: evaluating target on D': %v", round.Seq, err))
		return
	}
	if !ok {
		res.Violations = append(res.Violations,
			fmt.Sprintf("round %d: target result missing from presented results", round.Seq))
	}
}

// checkOutcome asserts the convergence invariants and runs the metamorphic
// differential oracle. Invariants apply only under target policy with the
// target injected (checkInvariants); divergence on fresh databases is
// recorded whenever the outcome is available.
//
// The invariants are calibrated to what the engine actually guarantees.
// Sessions winnow join-schema groups largest-first (§6.2) and finish as
// soon as one group narrows to a single class — so a session can converge,
// legitimately, on an *impostor* from a different join schema whose results
// agreed with the target's on the original database and on every presented
// modification. Perfect feedback cannot tell such a query from the target;
// only fresh data can. Within the target's own group, though, target
// feedback provably preserves the target, so there the surviving class must
// contain it (and a uniquely identified same-group query must be
// result-equivalent to it everywhere). Cross-group impostors that fresh
// databases expose are counted as Divergent — the differential oracle's
// measure of residual ambiguity — not as violations.
func (r *Runner) checkOutcome(sc *scenario.Scenario, found bool, query *algebra.Query,
	remaining []*algebra.Query, res *SessionResult) {
	check := r.checkInvariants() && !r.opts.NoInjectTarget
	if check && !found {
		res.Violations = append(res.Violations,
			"session ended not-found although the target was a candidate and feedback followed it")
		return
	}
	if !found {
		return
	}
	// Evaluate the target once per database; every equivalence check below
	// compares against these.
	dbs := append([]*db.Database{sc.DB}, r.freshDBs(sc, res)...)
	wants := make([]*relation.Relation, len(dbs))
	for i, d := range dbs {
		want, err := sc.Target.Evaluate(d)
		if err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("evaluating target on database %d: %v", i, err))
			return
		}
		wants[i] = want
	}
	targetKey := sc.Target.Key()
	targetGroup := sc.Target.JoinSchemaKey()
	sameGroup := false
	containsTarget := false
	for _, q := range remaining {
		if q.JoinSchemaKey() == targetGroup {
			sameGroup = true
		}
		if q.Key() == targetKey {
			containsTarget = true
		}
	}
	if check && sameGroup && !containsTarget {
		res.Violations = append(res.Violations,
			"converged class in the target's join-schema group does not contain the target")
	}
	if check && query != nil && query.JoinSchemaKey() == targetGroup &&
		query.Key() != targetKey && !resultEquivalent(query, dbs, wants) {
		res.Violations = append(res.Violations,
			"identified same-group query is not result-equivalent to the target on D and fresh databases")
	}
	// Differential oracle: every surviving query the fresh databases can
	// tell apart from the target is residual ambiguity the session's
	// modification space could not (or did not) resolve.
	for _, q := range remaining {
		if q.Key() == targetKey {
			continue
		}
		if !resultEquivalent(q, dbs, wants) {
			res.Divergent++
		}
	}
}

// freshDBs builds the differential oracle's databases for a scenario.
func (r *Runner) freshDBs(sc *scenario.Scenario, res *SessionResult) []*db.Database {
	if !sc.CanFresh() {
		return nil
	}
	out := make([]*db.Database, 0, r.opts.FreshDBs)
	for k := 0; k < r.opts.FreshDBs; k++ {
		d, err := sc.FreshDB(k)
		if err != nil {
			res.Violations = append(res.Violations, fmt.Sprintf("fresh db %d: %v", k, err))
			return out
		}
		out = append(out, d)
	}
	return out
}

// resultEquivalent reports whether q produces results bag-equal to the
// target's precomputed results on every database.
func resultEquivalent(q *algebra.Query, dbs []*db.Database, wants []*relation.Relation) bool {
	for i, d := range dbs {
		got, err := q.Evaluate(d)
		if err != nil || !got.BagEqual(wants[i]) {
			return false
		}
	}
	return true
}
