package simulate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"qfe/internal/algebra"
	"qfe/internal/codec"
	"qfe/internal/core"
	"qfe/internal/evalcache"
	"qfe/internal/feedback"
	"qfe/internal/relation"
	"qfe/internal/retry"
	"qfe/internal/scenario"
	"qfe/internal/service"
)

// runHTTP drives one scenario against a qfe-server instance: it ships the
// example pair through POST /sessions, answers each round by reconstructing
// D' from the returned edits and evaluating the target locally, and reads
// the outcome back. Candidate generation happens server-side, so the target
// may legitimately be absent from the server's candidate set; invariants
// are therefore not asserted in HTTP mode (divergence is still recorded)
// and convergence measures the end-to-end service, not just the engine.
// Latency per round is the HTTP round-trip measured through the runner's
// clock.
func (r *Runner) runHTTP(sc *scenario.Scenario, idx int, res *SessionResult) {
	client := retry.HTTPClient(r.opts.HTTPTimeout)
	base := r.opts.Server

	req := service.CreateRequest{
		Result:        ptr(codec.EncodeRelation(sc.R)),
		MaxCandidates: r.opts.MaxCandidates,
	}
	cd := codec.EncodeDatabase(sc.DB)
	req.Tables = cd.Tables
	req.PrimaryKeys = cd.PrimaryKeys
	req.ForeignKeys = cd.ForeignKeys

	oracle := r.oracleFor(sc, idx)

	st, err := r.call(client, http.MethodPost, base+"/sessions", req, res)
	if err != nil {
		res.Error = err.Error()
		return
	}
	res.Candidates = st.Candidates
	for !st.Done {
		if st.Round == nil {
			res.Error = "simulate: server returned neither round nor outcome"
			return
		}
		res.Rounds++
		choice, err := r.chooseHTTP(sc, oracle, st.Round)
		if errors.Is(err, feedback.ErrAbandoned) {
			// Same abandonment signal as the in-process path; tell the
			// server the user walked away.
			_, _ = r.call(client, http.MethodDelete, base+"/sessions/"+st.ID, nil, nil)
			res.Abandoned = true
			return
		}
		if err != nil {
			res.Error = err.Error()
			return
		}
		st, err = r.call(client, http.MethodPost,
			base+"/sessions/"+st.ID+"/feedback", service.FeedbackRequest{Choice: choice}, res)
		if err != nil {
			res.Error = err.Error()
			return
		}
	}
	if st.Outcome == nil {
		res.Error = "simulate: finished session without outcome"
		return
	}
	res.Converged = st.Outcome.Found
	res.Identified = st.Outcome.Query != nil
	res.Ambiguous = st.Outcome.Ambiguous
	remaining, err := codec.DecodeQueries(st.Outcome.Remaining)
	if err != nil {
		res.Error = err.Error()
		return
	}
	var identified *algebra.Query
	if st.Outcome.Query != nil {
		identified, err = codec.DecodeQuery(*st.Outcome.Query)
		if err != nil {
			res.Error = err.Error()
			return
		}
	}
	r.checkOutcome(sc, st.Outcome.Found, identified, remaining, res)
}

// chooseHTTP answers one HTTP round: it rebuilds D' from the round's edits,
// decodes the presented results, and applies the policy client-side.
func (r *Runner) chooseHTTP(sc *scenario.Scenario, oracle feedback.Oracle,
	round *service.RoundJSON) (int, error) {
	return chooseRound(sc, oracle, round)
}

// chooseRound is the wire-round answering logic shared by the load runner
// and the chaos harness: rebuild D' from the round's edits, decode the
// presented results, and apply the policy client-side.
func chooseRound(sc *scenario.Scenario, oracle feedback.Oracle,
	round *service.RoundJSON) (int, error) {
	edits, err := codec.DecodeEdits(round.Edits)
	if err != nil {
		return 0, fmt.Errorf("simulate: round edits: %w", err)
	}
	modified, err := sc.DB.ApplyEdits(edits)
	if err != nil {
		return 0, fmt.Errorf("simulate: applying round edits: %w", err)
	}
	results := make([]*relation.Relation, len(round.Results))
	groups := make([][]int, len(round.Results))
	qi := 0
	for i, rr := range round.Results {
		rel, err := codec.DecodeRelation(rr.Result)
		if err != nil {
			return 0, fmt.Errorf("simulate: round result %d: %w", i, err)
		}
		results[i] = rel
		// Reconstruct group sizes so WorstCase works over the wire (actual
		// query indexes are irrelevant to the shipped policies).
		groups[i] = make([]int, len(rr.Queries))
		for k := range groups[i] {
			groups[i][k] = qi
			qi++
		}
	}
	view := feedback.View{
		Iteration: round.Iteration,
		BaseDB:    sc.DB,
		BaseR:     sc.R,
		NewDB:     modified,
		Edits:     edits,
		Results:   results,
		Groups:    groups,
	}
	choice, ok, err := oracle.Choose(view)
	if err != nil {
		return 0, err
	}
	if !ok {
		return core.NoneOfThese, nil
	}
	return choice, nil
}

// call performs one JSON request/response cycle, charging its latency to
// the session when res is non-nil.
func (r *Runner) call(client *http.Client, method, url string, body any, res *SessionResult) (*service.SessionJSON, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t0 := r.clock()
	resp, err := client.Do(req)
	if res != nil {
		res.latencies = append(res.latencies, r.clock().Sub(t0))
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("simulate: %s %s: %s", method, url, apiErr.Error)
		}
		return nil, fmt.Errorf("simulate: %s %s: status %d", method, url, resp.StatusCode)
	}
	var st service.SessionJSON
	if method == http.MethodDelete {
		return nil, nil
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("simulate: decoding %s response: %w", url, err)
	}
	return &st, nil
}

// serverCacheStats fetches /stats and extracts the evaluation-cache block.
func (r *Runner) serverCacheStats() (evalcache.Stats, error) {
	client := retry.HTTPClient(r.opts.HTTPTimeout)
	resp, err := client.Get(r.opts.Server + "/stats")
	if err != nil {
		return evalcache.Stats{}, err
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return evalcache.Stats{}, err
	}
	return st.Cache, nil
}

func ptr[T any](v T) *T { return &v }
