package simulate

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"time"

	"qfe/internal/evalcache"
)

// SessionResult is the per-scenario outcome. Every field serialized to JSON
// is deterministic for a fixed (corpus, options) pair — timing lives in the
// report-level Timing block — so reports from repeated runs are identical
// modulo that block.
type SessionResult struct {
	Name       string `json:"name"`
	Kind       string `json:"kind"`
	Candidates int    `json:"candidates"`
	Rounds     int    `json:"rounds"`
	// Converged reports the session reached an outcome with the target's
	// candidate class surviving (core's Found).
	Converged bool `json:"converged"`
	// Identified means a single query remained; Ambiguous means a provably
	// indistinguishable class remained.
	Identified bool `json:"identified"`
	Ambiguous  bool `json:"ambiguous"`
	Abandoned  bool `json:"abandoned"`
	// Violations lists invariant failures: the target's result vanishing
	// from a presented round, the target pruned despite target feedback, or
	// the converged query disagreeing with the target on the original or a
	// fresh database (the metamorphic differential oracle).
	Violations []string `json:"violations,omitempty"`
	// Divergent counts remaining-class members that are NOT result-
	// equivalent to the target on some fresh database — candidates the
	// modification space of D provably cannot separate but fresh data can.
	// Informative, not a violation: it measures residual ambiguity.
	Divergent int    `json:"divergent,omitempty"`
	Error     string `json:"error,omitempty"`

	// Timings, reported only in aggregate (Timing block).
	qgen      time.Duration
	latencies []time.Duration
}

// Percentiles summarises a latency distribution in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50ms"`
	P90 float64 `json:"p90ms"`
	P99 float64 `json:"p99ms"`
	Max float64 `json:"maxMs"`
}

// RoundsBucket is one bar of the rounds-to-converge histogram.
type RoundsBucket struct {
	Rounds int `json:"rounds"`
	Count  int `json:"count"`
}

// Timing is the report's non-deterministic block: wall-clock quantities,
// concurrency high-water marks and cache counters. Reproducibility of a run
// is judged on the report with this block ignored.
type Timing struct {
	WallMS       float64         `json:"wallMs"`
	QGenMS       float64         `json:"qgenMs"` // summed over sessions
	RoundLatency Percentiles     `json:"roundLatency"`
	PeakSessions int             `json:"peakSessions"`
	Cache        evalcache.Stats `json:"cache"`
}

// Report is the simulation run's full result (written as BENCH_sim.json by
// qfe-sim).
type Report struct {
	Corpus       string `json:"corpus,omitempty"`
	Policy       string `json:"policy"`
	Workers      int    `json:"workers"`
	Server       string `json:"server,omitempty"`
	FreshDBs     int    `json:"freshDBs"`
	InjectTarget bool   `json:"injectTarget"`

	Scenarios  int `json:"scenarios"`
	Converged  int `json:"converged"`
	Identified int `json:"identified"`
	Ambiguous  int `json:"ambiguous"`
	NotFound   int `json:"notFound"`
	Abandoned  int `json:"abandoned"`
	Errors     int `json:"errors"`

	ConvergenceRate     float64 `json:"convergenceRate"`
	InvariantViolations int     `json:"invariantViolations"`
	Divergent           int     `json:"divergent"`
	TotalRounds         int     `json:"totalRounds"`

	RoundsHistogram []RoundsBucket  `json:"roundsHistogram"`
	Sessions        []SessionResult `json:"sessions"`

	Timing Timing `json:"timing"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// aggregate folds per-session results into the report's counters.
func (r *Report) aggregate(results []SessionResult, wall time.Duration, peak int, cache evalcache.Stats) {
	r.Sessions = results
	r.Scenarios = len(results)
	hist := map[int]int{}
	var lats []time.Duration
	var qgen time.Duration
	for i := range results {
		s := &results[i]
		r.TotalRounds += s.Rounds
		r.InvariantViolations += len(s.Violations)
		r.Divergent += s.Divergent
		switch {
		case s.Error != "":
			r.Errors++
		case s.Abandoned:
			r.Abandoned++
		case s.Converged:
			r.Converged++
			hist[s.Rounds]++
			if s.Identified {
				r.Identified++
			}
			if s.Ambiguous {
				r.Ambiguous++
			}
		default:
			r.NotFound++
		}
		lats = append(lats, s.latencies...)
		qgen += s.qgen
	}
	if r.Scenarios > 0 {
		r.ConvergenceRate = round4(float64(r.Converged) / float64(r.Scenarios))
	}
	rounds := make([]int, 0, len(hist))
	for k := range hist {
		rounds = append(rounds, k)
	}
	sort.Ints(rounds)
	for _, k := range rounds {
		r.RoundsHistogram = append(r.RoundsHistogram, RoundsBucket{Rounds: k, Count: hist[k]})
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	r.Timing = Timing{
		WallMS: ms(wall),
		QGenMS: ms(qgen),
		RoundLatency: Percentiles{
			P50: ms(percentile(lats, 0.50)),
			P90: ms(percentile(lats, 0.90)),
			P99: ms(percentile(lats, 0.99)),
			Max: ms(percentile(lats, 1.00)),
		},
		PeakSessions: peak,
		Cache:        cache,
	}
}

// percentile returns the q-quantile of an ascending-sorted slice (nearest-
// rank method).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d.Microseconds())/1000*1000) / 1000
}

func round4(f float64) float64 { return math.Round(f*10000) / 10000 }
