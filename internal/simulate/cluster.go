// Cluster chaos harness: end-to-end validation of the cluster tier
// (DESIGN.md §12) with real processes. RunClusterChaos launches N
// qfe-server workers and a qfe-router as subprocesses, drives concurrent
// sessions through the router while a killer goroutine SIGKILLs random
// workers at progress-randomized points (dead workers stay dead — the
// router fences them, hands their WAL estate to the survivors, and
// reassigns their hash range), and verifies the same two properties as the
// single-node harness:
//
//   - zero lost acknowledged state: every session any worker acknowledged
//     survives the deaths of up to Nodes-1 workers, and
//   - outcome determinism: every session's final outcome is byte-identical
//     to a reference run against one uninterrupted single-node server.
package simulate

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/par"
	"qfe/internal/retry"
)

// ClusterChaosOptions tunes a cluster chaos run. RouterBin joins
// ChaosOptions.ServerBin as a required binary path.
type ClusterChaosOptions struct {
	ChaosOptions
	// RouterBin is the path to a built qfe-router binary.
	RouterBin string
	// Nodes is the worker count (default 3).
	Nodes int
	// Kills (from ChaosOptions) is how many workers to SIGKILL; clamped to
	// Nodes-1 so at least one worker survives to adopt the estates.
}

// ClusterReport is the JSON report of a cluster chaos run
// (BENCH_cluster.json).
type ClusterReport struct {
	Sessions    int   `json:"sessions"`
	Nodes       int   `json:"nodes"`
	Workers     int   `json:"workers"`
	Kills       int   `json:"kills"`       // requested worker deaths
	KillsLanded int   `json:"killsLanded"` // SIGKILLs actually delivered mid-run
	Seed        int64 `json:"seed"`

	// Completed sessions reached an outcome; Lost counts durability
	// violations (a 404/409 for acknowledged state); Mismatched counts
	// outcomes differing from the single-node reference run; Skipped slots
	// failed deterministically in the reference pass. A correct cluster
	// keeps Lost, Mismatched and Errors at zero.
	Completed  int `json:"completed"`
	Lost       int `json:"lostAcknowledged"`
	Mismatched int `json:"outcomeMismatches"`
	Errors     int `json:"errors"`
	Skipped    int `json:"skipped"`

	// HTTPRetries counts client attempts retried against the router.
	HTTPRetries int `json:"httpRetries"`

	// Router counters at the end of the run (see cluster.CounterSnapshot).
	Failovers     int64 `json:"failovers"`
	AdoptCalls    int64 `json:"adoptCalls"`
	AdoptErrors   int64 `json:"adoptErrors"`
	RouterRetries int64 `json:"routerRetries"`
	Shed          int64 `json:"shed"`

	WallNs int64 `json:"wallNs"`
}

// proc is one managed subprocess (worker or router) with an HTTP base URL.
type proc struct {
	name string
	base string
	mu   sync.Mutex
	cmd  *exec.Cmd
}

// start launches the process and waits for its /healthz.
func (p *proc) start(bin string, args []string) error {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("cluster: starting %s: %w", p.name, err)
	}
	p.mu.Lock()
	p.cmd = cmd
	p.mu.Unlock()
	client := retry.HTTPClient(time.Second)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	p.kill()
	return fmt.Errorf("cluster: %s did not become healthy within 60s", p.name)
}

// kill SIGKILLs the process and reaps it (idempotent).
func (p *proc) kill() {
	p.mu.Lock()
	cmd := p.cmd
	p.cmd = nil
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
}

// RunClusterChaos executes the full harness: a single-node reference pass,
// then the cluster pass with worker SIGKILLs, then the comparison. The
// caller gates on Lost, Mismatched and Errors all being zero.
func RunClusterChaos(opts ClusterChaosOptions) (*ClusterReport, error) {
	if opts.ServerBin == "" {
		return nil, errors.New("cluster: ServerBin is required")
	}
	if opts.RouterBin == "" {
		return nil, errors.New("cluster: RouterBin is required")
	}
	if len(opts.Corpus) == 0 {
		return nil, errors.New("cluster: empty corpus")
	}
	if opts.Nodes <= 0 {
		opts.Nodes = 3
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 50
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Kills <= 0 {
		opts.Kills = 1
	}
	if opts.Kills > opts.Nodes-1 {
		// At least one worker must survive to adopt the estates.
		opts.Kills = opts.Nodes - 1
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 16
	}
	if opts.SyncPolicy == "" {
		opts.SyncPolicy = "off"
	}
	if opts.Checkpoint <= 0 {
		opts.Checkpoint = 500 * time.Millisecond
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 30 * time.Second
	}
	if opts.RetryFor <= 0 {
		opts.RetryFor = 2 * time.Minute
	}
	if opts.Log == nil {
		opts.Log = os.Stderr
	}
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "qfe-cluster-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}

	t0 := time.Now()

	// Reference pass: the same corpus against one uninterrupted single-node
	// server. The cluster must reproduce these outcomes byte-identically —
	// placement, failover and adoption may move sessions between machines
	// but must never change what the engine computes.
	fmt.Fprintf(opts.Log, "cluster: reference pass: %d sessions, %d workers (single node)\n",
		opts.Sessions, opts.Workers)
	refOut, _, err := runPass(opts.ChaosOptions, filepath.Join(opts.WorkDir, "ref"), nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: reference pass: %w", err)
	}
	skip := make([]bool, len(refOut))
	for i, o := range refOut {
		if o.err != nil {
			skip[i] = true
			fmt.Fprintf(opts.Log, "cluster: session %d: skipped (reference: %v)\n", i, o.err)
		}
	}

	rep := &ClusterReport{
		Sessions: opts.Sessions,
		Nodes:    opts.Nodes,
		Workers:  opts.Workers,
		Kills:    opts.Kills,
		Seed:     opts.Seed,
	}

	// Cluster topology: N workers, each with its own state file and WAL
	// directory, plus the router fronting them.
	workers := make([]*proc, opts.Nodes)
	workerArgs := make([]string, 0, opts.Nodes)
	defer func() {
		for _, w := range workers {
			if w != nil {
				w.kill()
			}
		}
	}()
	for i := range workers {
		port, err := freePort()
		if err != nil {
			return nil, err
		}
		id := "w" + strconv.Itoa(i)
		dir := filepath.Join(opts.WorkDir, "node-"+strconv.Itoa(i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		statePath := filepath.Join(dir, "state.json")
		walDir := filepath.Join(dir, "wal")
		w := &proc{name: id, base: "http://127.0.0.1:" + strconv.Itoa(port)}
		if err := w.start(opts.ServerBin, []string{
			"-addr", "127.0.0.1:" + strconv.Itoa(port),
			"-state", statePath,
			"-wal", walDir,
			"-wal-sync", opts.SyncPolicy,
			"-checkpoint", opts.Checkpoint.String(),
			"-candidates", strconv.Itoa(opts.MaxCandidates),
			"-admin",
		}); err != nil {
			return nil, err
		}
		workers[i] = w
		workerArgs = append(workerArgs, "-worker",
			fmt.Sprintf("id=%s,url=%s,state=%s,wal=%s", id, w.base, statePath, walDir))
	}

	routerPort, err := freePort()
	if err != nil {
		return nil, err
	}
	router := &proc{name: "router", base: "http://127.0.0.1:" + strconv.Itoa(routerPort)}
	args := append([]string{
		"-addr", "127.0.0.1:" + strconv.Itoa(routerPort),
		"-probe-interval", "100ms",
		"-dead-after", "3",
		"-retry-budget", "30s",
		"-call-timeout", opts.CallTimeout.String(),
	}, workerArgs...)
	if err := router.start(opts.RouterBin, args); err != nil {
		return nil, err
	}
	defer router.kill()
	fmt.Fprintf(opts.Log, "cluster: kill pass: %d worker(s) + router up, %d progress-triggered kill(s)\n",
		opts.Nodes, opts.Kills)

	client := &chaosClient{
		base:     router.base,
		client:   retry.HTTPClient(opts.CallTimeout),
		retryFor: opts.RetryFor,
	}

	// Killer: at each progress-randomized point, SIGKILL one random
	// still-alive worker. No restarts — death is terminal in the cluster
	// design; the router must reroute and the survivors must carry on. Kill
	// points land in the first ~60% of the run so every requested death
	// happens while sessions are still in flight (the comparison is only
	// interesting for kills the cluster had to survive mid-load).
	done := make(chan struct{})
	var completed atomic.Int64
	var killsLanded atomic.Int64
	var killerWG sync.WaitGroup
	rng := rand.New(rand.NewSource(opts.Seed))
	points := make([]int, opts.Kills)
	for k := range points {
		points[k] = rng.Intn(opts.Sessions*3/5 + 1)
	}
	sortInts(points)
	alive := make([]int, opts.Nodes)
	for i := range alive {
		alive[i] = i
	}
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		for k, point := range points {
			for completed.Load() < int64(point) {
				select {
				case <-done:
					return
				case <-time.After(2 * time.Millisecond):
				}
			}
			// Once the point is reached the kill always fires (even if the
			// run drains in this instant): the jitter lands the SIGKILL at an
			// arbitrary instruction rather than on a session boundary.
			time.Sleep(time.Duration(rng.Int63n(int64(40 * time.Millisecond))))
			vi := rng.Intn(len(alive))
			victim := alive[vi]
			alive = append(alive[:vi], alive[vi+1:]...)
			workers[victim].kill()
			killsLanded.Add(1)
			fmt.Fprintf(opts.Log, "cluster: kill %d/%d: SIGKILL w%d (at %d completed sessions); %d worker(s) left\n",
				k+1, opts.Kills, victim, completed.Load(), len(alive))
		}
	}()

	out := make([]sessionOutcome, opts.Sessions)
	par.Do(opts.Sessions, opts.Workers, func(i int) {
		sc := opts.Corpus[i%len(opts.Corpus)]
		o, err := driveSession(client, sc, opts.MaxCandidates)
		out[i] = sessionOutcome{outcome: o, err: err}
		completed.Add(1)
	})
	close(done)
	killerWG.Wait()
	rep.KillsLanded = int(killsLanded.Load())
	rep.HTTPRetries = int(client.retries.Load())

	// Fold in the router's own counters before tearing anything down.
	if stats, err := fetchClusterStats(router.base); err == nil {
		rep.Failovers = stats.Counters.Failovers
		rep.AdoptCalls = stats.Counters.AdoptCalls
		rep.AdoptErrors = stats.Counters.AdoptErrors
		rep.RouterRetries = stats.Counters.Retries
		rep.Shed = stats.Counters.Shed
	} else {
		fmt.Fprintf(opts.Log, "cluster: fetching router stats: %v\n", err)
	}

	for i := range out {
		co := out[i]
		switch {
		case skip[i]:
			rep.Skipped++
		case co.err != nil && errors.Is(co.err, errLost):
			rep.Lost++
			fmt.Fprintf(opts.Log, "cluster: session %d: LOST: %v\n", i, co.err)
		case co.err != nil:
			rep.Errors++
			fmt.Fprintf(opts.Log, "cluster: session %d: error: %v\n", i, co.err)
		default:
			rep.Completed++
			want, _ := json.Marshal(refOut[i].outcome)
			got, _ := json.Marshal(co.outcome)
			if string(want) != string(got) {
				rep.Mismatched++
				fmt.Fprintf(opts.Log, "cluster: session %d: outcome mismatch:\n  ref:     %s\n  cluster: %s\n", i, want, got)
			}
		}
	}
	rep.WallNs = int64(time.Since(t0))
	return rep, nil
}

// clusterStatsLite mirrors the fields of cluster.ClusterStats the report
// needs (decoded structurally to avoid importing the router into the
// harness).
type clusterStatsLite struct {
	Counters struct {
		Retries     int64 `json:"retries"`
		Shed        int64 `json:"shed"`
		Failovers   int64 `json:"failovers"`
		AdoptCalls  int64 `json:"adoptCalls"`
		AdoptErrors int64 `json:"adoptErrors"`
	} `json:"counters"`
}

func fetchClusterStats(base string) (*clusterStatsLite, error) {
	client := retry.HTTPClient(5 * time.Second)
	resp, err := client.Get(base + "/cluster/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st clusterStatsLite
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
