package simulate

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"qfe/internal/scenario"
	"qfe/internal/service"
)

func testCorpus(t *testing.T, n int) []*scenario.Scenario {
	t.Helper()
	corpus, err := scenario.GenerateCorpus(1, n, scenario.DefaultGenOptions())
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return corpus
}

// fakeClock advances a fixed step on every reading, so every interval the
// harness measures equals exactly one step — no sleeping, no flakiness.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// TestRunTargetConvergesCleanly is the harness's own acceptance check in
// miniature: a generated corpus under target feedback converges on every
// scenario with zero invariant violations.
func TestRunTargetConvergesCleanly(t *testing.T) {
	corpus := testCorpus(t, 12)
	r, err := New(Options{Workers: 4, Policy: PolicyTarget, FreshDBs: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Scenarios != len(corpus) {
		t.Fatalf("scenarios %d, want %d", rep.Scenarios, len(corpus))
	}
	if rep.Converged != len(corpus) || rep.ConvergenceRate != 1 {
		t.Fatalf("converged %d/%d (rate %v)", rep.Converged, rep.Scenarios, rep.ConvergenceRate)
	}
	if rep.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations: %+v", rep.InvariantViolations, rep.Sessions)
	}
	if rep.Errors != 0 || rep.NotFound != 0 || rep.Abandoned != 0 {
		t.Fatalf("unexpected failures: %+v", rep)
	}
	if rep.TotalRounds == 0 || len(rep.RoundsHistogram) == 0 {
		t.Fatal("no rounds recorded")
	}
	if rep.Timing.PeakSessions < 1 {
		t.Fatalf("peak sessions %d", rep.Timing.PeakSessions)
	}
}

// TestRunDeterministicAcrossWorkers: the deterministic report block must
// not depend on scheduling.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	corpus := testCorpus(t, 8)
	var reps [][]byte
	for _, workers := range []int{1, 4} {
		r, err := New(Options{Workers: workers, Policy: PolicyTarget, FreshDBs: 1})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		rep, err := r.Run(corpus)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		rep.Timing = Timing{} // the documented non-deterministic block
		rep.Workers = 0
		// JSON form: exactly the report's deterministic surface (per-session
		// timings are unexported and excluded).
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		reps = append(reps, buf)
	}
	if !bytes.Equal(reps[0], reps[1]) {
		t.Fatalf("reports differ across worker counts:\n%s\n%s", reps[0], reps[1])
	}
}

// TestFakeClockLatencies: with an injected stepping clock, every measured
// round latency is exactly one step, so the percentiles are exact — the
// testability the clock threading exists for.
func TestFakeClockLatencies(t *testing.T) {
	corpus := testCorpus(t, 4)
	step := 10 * time.Millisecond
	clk := &fakeClock{now: time.Unix(1000, 0), step: step}
	r, err := New(Options{Workers: 1, Policy: PolicyTarget, FreshDBs: 0, Clock: clk.Now})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wantMS := float64(step.Milliseconds())
	p := rep.Timing.RoundLatency
	for _, got := range []float64{p.P50, p.P90, p.P99, p.Max} {
		if got != wantMS {
			t.Fatalf("latency percentiles %+v, want all %v ms", p, wantMS)
		}
	}
	if rep.Timing.WallMS <= 0 || rep.Timing.QGenMS <= 0 {
		t.Fatalf("fake clock produced non-positive wall/qgen times: %+v", rep.Timing)
	}
}

// TestAbandonPolicy: sessions longer than the patience budget are counted
// abandoned, never as errors or violations.
func TestAbandonPolicy(t *testing.T) {
	corpus := testCorpus(t, 10)
	r, err := New(Options{Workers: 2, Policy: PolicyAbandon, AbandonAfter: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Abandoned == 0 {
		t.Fatal("patience 1 abandoned no sessions")
	}
	if rep.Abandoned+rep.Converged != rep.Scenarios {
		t.Fatalf("abandoned %d + converged %d != %d", rep.Abandoned, rep.Converged, rep.Scenarios)
	}
	if rep.Errors != 0 || rep.InvariantViolations != 0 {
		t.Fatalf("abandonment produced errors/violations: %+v", rep)
	}
	for _, s := range rep.Sessions {
		if s.Abandoned && s.Rounds != 2 {
			t.Fatalf("%s abandoned after %d rounds, want 2 (1 answered + 1 walked out)", s.Name, s.Rounds)
		}
	}
}

// TestNoisyPolicy runs under deliberately unreliable feedback; the harness
// must complete every session without engine errors.
func TestNoisyPolicy(t *testing.T) {
	corpus := testCorpus(t, 8)
	r, err := New(Options{Workers: 2, Policy: PolicyNoisy, NoiseRate: 0.5, NoiseSeed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("noisy run errored: %+v", rep.Sessions)
	}
	if rep.InvariantViolations != 0 {
		t.Fatal("invariants must be disabled under noisy feedback")
	}
}

// TestWorstPolicy mirrors the paper's worst-case automation.
func TestWorstPolicy(t *testing.T) {
	corpus := testCorpus(t, 6)
	r, err := New(Options{Workers: 2, Policy: PolicyWorst})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("worst-case run errored: %+v", rep.Sessions)
	}
}

// TestRunHTTP drives the same corpus through a real qfe-server handler over
// HTTP: create, per-round feedback computed client-side from the returned
// edits, outcome decode — the full wire path.
func TestRunHTTP(t *testing.T) {
	// The first three corpus entries have server-derivable candidate sets;
	// the fourth is solvable only with target injection, which does not
	// exist over the wire (the server generates its own candidates).
	corpus := testCorpus(t, 4)[:3]
	m := service.New(service.Options{Config: DefaultCoreConfig()})
	srv := httptest.NewServer(service.NewHandler(m, service.HandlerOptions{}))
	defer srv.Close()

	r, err := New(Options{Workers: 2, Policy: PolicyTarget, Server: srv.URL})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := r.Run(corpus)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Errors != 0 {
		t.Fatalf("HTTP run errored: %+v", rep.Sessions)
	}
	if rep.Converged == 0 {
		t.Fatalf("no session converged over HTTP: %+v", rep.Sessions)
	}
	if rep.InvariantViolations != 0 {
		t.Fatal("invariants must be off in HTTP mode (no target injection)")
	}
	for _, s := range rep.Sessions {
		if s.Candidates == 0 {
			t.Fatalf("%s: server reported no candidates", s.Name)
		}
	}
	if st := m.Stats(); st.SessionsStarted == 0 {
		t.Fatal("server saw no sessions")
	}
}
