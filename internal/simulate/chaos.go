// Chaos harness: crash-recovery validation of qfe-server's WAL durability
// path (DESIGN.md §11) from the outside. RunChaos launches a real qfe-server
// subprocess with a WAL and drives concurrent sessions against it over HTTP
// while a killer goroutine SIGKILLs the process at randomized moments and
// restarts it. Clients retry through the crashes with seq-tagged feedback
// (idempotent under lost acknowledgements) and verify two properties:
//
//   - zero lost acknowledged state: every session the server acknowledged
//     survives each crash (a 404 for a created session, or a 409 seq-ahead
//     response for an acknowledged round, is a durability violation), and
//   - replay determinism: every session's final outcome is byte-identical
//     to a reference run of the same corpus against an uninterrupted server.
//
// SIGKILL cannot tear a completed write(2) (the page cache survives the
// process), so the harness validates logical recovery under any -wal-sync
// policy; torn-tail and corruption handling are unit-tested in internal/wal
// by direct file surgery.
package simulate

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"qfe/internal/codec"
	"qfe/internal/fault"
	"qfe/internal/feedback"
	"qfe/internal/par"
	"qfe/internal/retry"
	"qfe/internal/scenario"
	"qfe/internal/service"
)

// ChaosOptions tunes a chaos run. ServerBin and Corpus are required.
type ChaosOptions struct {
	// ServerBin is the path to a built qfe-server binary.
	ServerBin string
	// Corpus supplies the scenarios; sessions cycle through it.
	Corpus []*scenario.Scenario
	// Sessions is how many sessions to drive (default 50).
	Sessions int
	// Workers is client-side concurrency (default 8).
	Workers int
	// Kills is how many SIGKILL+restart cycles to inject (default 5). The
	// killer is progress-triggered: each kill fires when a randomized
	// number of sessions has completed, so kills land mid-run on any
	// machine speed instead of depending on wall-clock pacing.
	Kills int
	// Seed randomizes kill points (and nothing else; the sessions
	// themselves are deterministic).
	Seed int64
	// WorkDir holds the server's state file and WAL (default: a temp dir,
	// removed afterwards).
	WorkDir string
	// MaxCandidates caps server-side candidate generation (default 16).
	MaxCandidates int
	// SyncPolicy is passed to -wal-sync (default "off": SIGKILL recovery
	// does not need fsync, and the run is much faster).
	SyncPolicy string
	// Checkpoint is the server's -checkpoint cadence (default 500ms, so
	// runs exercise snapshot+truncate+replay-tail recovery, not just
	// full-log replay).
	Checkpoint time.Duration
	// CallTimeout bounds one HTTP attempt (default 30s); RetryFor bounds
	// the whole retry loop around a call (default 2 minutes — it must
	// cover a crash, a restart and a full recovery replay).
	CallTimeout time.Duration
	RetryFor    time.Duration
	// Faults scripts injected storage and network failures for the chaos
	// pass (nil = crashes only). The server subprocess gets the schedule's
	// storage + inbound faults via -fault-schedule; the harness client's
	// transport applies the outbound ones. The reference pass always runs
	// unfaulted — it defines the outcomes the faulted run must reproduce.
	Faults *fault.Schedule
	// Log receives harness progress lines (default os.Stderr; io.Discard
	// silences it).
	Log io.Writer
}

// ChaosReport is the JSON report of a chaos run (BENCH_chaos.json).
type ChaosReport struct {
	Sessions int   `json:"sessions"`
	Workers  int   `json:"workers"`
	Kills    int   `json:"kills"`
	Restarts int   `json:"restarts"`
	Seed     int64 `json:"seed"`

	// Completed sessions reached an outcome; Lost counts durability
	// violations (acknowledged session or round the restarted server had
	// forgotten); Mismatched counts outcomes that differ from the
	// uninterrupted reference run. A correct server keeps both at zero.
	// Skipped slots failed deterministically in the reference pass (e.g. the
	// server's candidate generation cannot reverse-engineer the scenario —
	// a 400 on create) and are excluded from the comparison.
	Completed  int `json:"completed"`
	Lost       int `json:"lostAcknowledged"`
	Mismatched int `json:"outcomeMismatches"`
	Errors     int `json:"errors"`
	Skipped    int `json:"skipped"`

	// HTTPRetries counts client attempts that hit a down or restarting
	// server and were retried.
	HTTPRetries int `json:"httpRetries"`

	// Recovery counters summed over restarts, from the server's /stats.
	SessionsRestored   uint64 `json:"sessionsRestored"`
	SessionsReplayed   uint64 `json:"sessionsReplayed"`
	WALRecordsReplayed uint64 `json:"walRecordsReplayed"`
	RecoveryTotalNs    int64  `json:"recoveryTotalNs"`
	RecoveryMaxNs      int64  `json:"recoveryMaxNs"`

	// Fault-plane observations, summed across server process generations
	// (each restart resets the server's in-memory counters, so the harness
	// samples /stats before every kill and once at the end).
	FaultSpec         string `json:"faultSpec,omitempty"`
	WALAppendErrors   uint64 `json:"walAppendErrors,omitempty"`
	DegradedEntered   uint64 `json:"degradedEntered,omitempty"`
	DegradedRecovered uint64 `json:"degradedRecovered,omitempty"`

	WallNs int64 `json:"wallNs"`
}

// chaosServer manages the qfe-server subprocess: one fixed port across
// restarts (so clients keep one base URL), SIGKILL, restart, readiness.
type chaosServer struct {
	opts ChaosOptions
	port int
	base string
	// faultPath names the schedule JSON passed to -fault-schedule (chaos
	// pass only; empty = no injection). The schedule re-arms on every
	// restart, so early faults replay in each process generation.
	faultPath string

	mu  sync.Mutex
	cmd *exec.Cmd
}

func (s *chaosServer) args() []string {
	a := []string{
		"-addr", "127.0.0.1:" + strconv.Itoa(s.port),
		"-state", filepath.Join(s.opts.WorkDir, "state.json"),
		"-wal", filepath.Join(s.opts.WorkDir, "wal"),
		"-wal-sync", s.opts.SyncPolicy,
		"-checkpoint", s.opts.Checkpoint.String(),
		"-candidates", strconv.Itoa(s.opts.MaxCandidates),
	}
	if s.faultPath != "" {
		a = append(a, "-fault-schedule", s.faultPath)
	}
	return a
}

// start launches the server and waits for /healthz.
func (s *chaosServer) start() error {
	s.mu.Lock()
	cmd := exec.Command(s.opts.ServerBin, s.args()...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("chaos: starting server: %w", err)
	}
	s.cmd = cmd
	s.mu.Unlock()

	client := retry.HTTPClient(time.Second)
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get(s.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	s.kill()
	return errors.New("chaos: server did not become healthy within 60s")
}

// kill SIGKILLs the server and reaps it.
func (s *chaosServer) kill() {
	s.mu.Lock()
	cmd := s.cmd
	s.cmd = nil
	s.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
}

// stats fetches the server's /stats counters.
func (s *chaosServer) stats() (service.Stats, error) {
	client := retry.HTTPClient(5 * time.Second)
	resp, err := client.Get(s.base + "/stats")
	if err != nil {
		return service.Stats{}, err
	}
	defer resp.Body.Close()
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Stats{}, err
	}
	return st, nil
}

// freePort reserves a port by binding and releasing it. Go listeners set
// SO_REUSEADDR, so the restarted server can rebind it immediately.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	port := ln.Addr().(*net.TCPAddr).Port
	return port, ln.Close()
}

// chaosClient is the retrying, seq-aware HTTP client the session drivers
// share, built on retry.Policy (capped exponential backoff + full jitter).
// Transport errors (connection refused/reset while a server is down or
// restarting) and backpressure statuses (429, 502, 503, 504 — a router
// fencing a dead worker or shedding load answers 503 + Retry-After) retry
// until the budget runs out; every other HTTP response is authoritative —
// the server was alive to produce it.
type chaosClient struct {
	base     string
	client   *http.Client
	retryFor time.Duration
	retries  atomic.Int64
}

// errLost marks a durability violation detected by the protocol: the
// restarted server does not know a session or round it acknowledged.
var errLost = errors.New("chaos: acknowledged state lost")

// retryableStatus reports whether an HTTP status promises that trying again
// later can succeed.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

func (c *chaosClient) do(method, path string, body any) (*service.SessionJSON, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, err
		}
	}
	var st *service.SessionJSON
	pol := retry.Policy{
		Cap:     400 * time.Millisecond,
		Budget:  c.retryFor,
		OnRetry: func(int, error, time.Duration) { c.retries.Add(1) },
	}
	err := pol.Do(context.Background(), func() error {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("chaos: %s %s: %w", method, path, err)
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			// Connection died mid-response (a kill landed between headers
			// and body): indistinguishable from a lost request — retry.
			return fmt.Errorf("chaos: %s %s: reading response: %w", method, path, rerr)
		}
		if resp.StatusCode >= 300 {
			var apiErr struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(data, &apiErr)
			switch {
			case resp.StatusCode == http.StatusNotFound:
				return retry.Permanent(fmt.Errorf("%w: %s %s: 404 %s", errLost, method, path, apiErr.Error))
			case resp.StatusCode == http.StatusConflict:
				// ErrSeqAhead is the lost-acknowledged-round detector;
				// ErrFinished cannot reach a seq-tagged client (that path
				// returns the idempotent status instead).
				return retry.Permanent(fmt.Errorf("%w: %s %s: 409 %s", errLost, method, path, apiErr.Error))
			case retryableStatus(resp.StatusCode):
				return fmt.Errorf("chaos: %s %s: status %d: %s", method, path, resp.StatusCode, apiErr.Error)
			default:
				return retry.Permanent(fmt.Errorf("chaos: %s %s: status %d: %s", method, path, resp.StatusCode, apiErr.Error))
			}
		}
		if method == http.MethodDelete {
			st = nil
			return nil
		}
		var decoded service.SessionJSON
		if err := json.Unmarshal(data, &decoded); err != nil {
			return retry.Permanent(fmt.Errorf("chaos: decoding %s response: %w", path, err))
		}
		st = &decoded
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// driveSession runs one scenario to its outcome through the retrying
// client, answering rounds with target-policy feedback. It returns the
// final outcome (for comparison against the reference run).
func driveSession(c *chaosClient, sc *scenario.Scenario, maxCand int) (*service.OutcomeJSON, error) {
	req := service.CreateRequest{MaxCandidates: maxCand}
	cd := codec.EncodeDatabase(sc.DB)
	req.Tables = cd.Tables
	req.PrimaryKeys = cd.PrimaryKeys
	req.ForeignKeys = cd.ForeignKeys
	req.Result = ptr(codec.EncodeRelation(sc.R))

	oracle := feedback.Target{Query: sc.Target}
	st, err := c.do(http.MethodPost, "/sessions", req)
	if err != nil {
		return nil, err
	}
	for !st.Done {
		if st.Round == nil {
			return nil, errors.New("chaos: server returned neither round nor outcome")
		}
		choice, err := chooseRound(sc, oracle, st.Round)
		if err != nil {
			return nil, err
		}
		st, err = c.do(http.MethodPost, "/sessions/"+st.ID+"/feedback",
			service.FeedbackRequest{Choice: choice, Seq: st.Round.Seq})
		if err != nil {
			return nil, err
		}
	}
	if st.Outcome == nil {
		return nil, errors.New("chaos: finished session without outcome")
	}
	return st.Outcome, nil
}

// RunChaos executes the full harness: a reference pass against an
// uninterrupted server, then the chaos pass with SIGKILL injection, then
// the comparison. It returns the report; the caller decides what counts as
// failure (the CLI gates on Lost > 0 or Mismatched > 0).
func RunChaos(opts ChaosOptions) (*ChaosReport, error) {
	if opts.ServerBin == "" {
		return nil, errors.New("chaos: ServerBin is required")
	}
	if len(opts.Corpus) == 0 {
		return nil, errors.New("chaos: empty corpus")
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 50
	}
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.Kills < 0 {
		opts.Kills = 0
	} else if opts.Kills == 0 {
		opts.Kills = 5
	}
	if opts.MaxCandidates <= 0 {
		opts.MaxCandidates = 16
	}
	if opts.SyncPolicy == "" {
		opts.SyncPolicy = "off"
	}
	if opts.Checkpoint <= 0 {
		opts.Checkpoint = 500 * time.Millisecond
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 30 * time.Second
	}
	if opts.RetryFor <= 0 {
		opts.RetryFor = 2 * time.Minute
	}
	if opts.Log == nil {
		opts.Log = os.Stderr
	}
	if opts.WorkDir == "" {
		dir, err := os.MkdirTemp("", "qfe-chaos-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		opts.WorkDir = dir
	}

	t0 := time.Now()

	// Reference pass: same corpus, same server binary and flags, no kills.
	// Replay determinism is then "chaos outcomes == reference outcomes".
	fmt.Fprintf(opts.Log, "chaos: reference pass: %d sessions, %d workers\n", opts.Sessions, opts.Workers)
	refOut, _, err := runPass(opts, filepath.Join(opts.WorkDir, "ref"), nil)
	if err != nil {
		return nil, fmt.Errorf("chaos: reference pass: %w", err)
	}
	// A reference failure is deterministic (no kills happen in that pass):
	// the server cannot serve this scenario at all — most often create
	// returns 400 because server-side candidate generation found no SPJ
	// query. Such slots are excluded from the chaos comparison.
	skip := make([]bool, len(refOut))
	for i, o := range refOut {
		if o.err != nil {
			skip[i] = true
			fmt.Fprintf(opts.Log, "chaos: session %d: skipped (reference: %v)\n", i, o.err)
		}
	}

	// Chaos pass.
	fmt.Fprintf(opts.Log, "chaos: kill pass: %d progress-triggered kill(s)\n", opts.Kills)
	rep := &ChaosReport{
		Sessions: opts.Sessions,
		Workers:  opts.Workers,
		Kills:    opts.Kills,
		Seed:     opts.Seed,
	}
	if opts.Faults != nil {
		fmt.Fprintf(opts.Log, "chaos: fault injection: %d storage + %d network fault(s)\n",
			len(opts.Faults.Storage), len(opts.Faults.Network))
	}
	chaosOut, kstats, err := runPass(opts, filepath.Join(opts.WorkDir, "chaos"), rep)
	if err != nil {
		return nil, fmt.Errorf("chaos: kill pass: %w", err)
	}

	rep.Restarts = kstats.restarts
	rep.HTTPRetries = int(kstats.retries)
	rep.SessionsRestored = kstats.restored
	rep.SessionsReplayed = kstats.replayed
	rep.WALRecordsReplayed = kstats.records
	rep.RecoveryTotalNs = kstats.recoveryTotal
	rep.RecoveryMaxNs = kstats.recoveryMax
	rep.WALAppendErrors = kstats.walAppendErrors
	rep.DegradedEntered = kstats.degradedEntered
	rep.DegradedRecovered = kstats.degradedRecovered

	for i := range chaosOut {
		co := chaosOut[i]
		switch {
		case skip[i]:
			rep.Skipped++
		case co.err != nil && errors.Is(co.err, errLost):
			rep.Lost++
			fmt.Fprintf(opts.Log, "chaos: session %d: LOST: %v\n", i, co.err)
		case co.err != nil:
			rep.Errors++
			fmt.Fprintf(opts.Log, "chaos: session %d: error: %v\n", i, co.err)
		default:
			rep.Completed++
			want, _ := json.Marshal(refOut[i].outcome)
			got, _ := json.Marshal(co.outcome)
			if string(want) != string(got) {
				rep.Mismatched++
				fmt.Fprintf(opts.Log, "chaos: session %d: outcome mismatch:\n  ref:   %s\n  chaos: %s\n", i, want, got)
			}
		}
	}
	rep.WallNs = int64(time.Since(t0))
	return rep, nil
}

// sessionOutcome is one driven session's result in a pass.
type sessionOutcome struct {
	outcome *service.OutcomeJSON
	err     error
}

// killerStats aggregates what the killer goroutine observed.
type killerStats struct {
	restarts      int
	retries       int64
	restored      uint64
	replayed      uint64
	records       uint64
	recoveryTotal int64
	recoveryMax   int64

	// Fault-plane counters, summed across process generations.
	walAppendErrors   uint64
	degradedEntered   uint64
	degradedRecovered uint64
}

// addFaultStats folds one process generation's fault counters in.
func (ks *killerStats) addFaultStats(st service.Stats) {
	ks.walAppendErrors += st.WALAppendErrors
	ks.degradedEntered += st.DegradedEntered
	ks.degradedRecovered += st.DegradedRecovered
}

// runPass drives opts.Sessions sessions against one server instance. With
// rep non-nil this is the chaos pass: a killer goroutine SIGKILLs and
// restarts the server at seeded random intervals until the kill budget or
// the sessions run out.
func runPass(opts ChaosOptions, workDir string, rep *ChaosReport) ([]sessionOutcome, killerStats, error) {
	var ks killerStats
	if err := os.MkdirAll(workDir, 0o755); err != nil {
		return nil, ks, err
	}
	port, err := freePort()
	if err != nil {
		return nil, ks, err
	}
	passOpts := opts
	passOpts.WorkDir = workDir
	srv := &chaosServer{opts: passOpts, port: port, base: "http://127.0.0.1:" + strconv.Itoa(port)}
	// Faults apply only to the chaos pass (rep != nil): the reference pass
	// defines the outcomes the faulted run must still reproduce.
	faulted := rep != nil && opts.Faults != nil
	if faulted && (opts.Faults.HasStorage() || opts.Faults.HasNetwork(fault.SideInbound)) {
		srv.faultPath = filepath.Join(workDir, "faults.json")
		if err := opts.Faults.Save(srv.faultPath); err != nil {
			return nil, ks, fmt.Errorf("chaos: writing fault schedule: %w", err)
		}
	}
	if err := srv.start(); err != nil {
		return nil, ks, err
	}
	defer srv.kill()

	httpc := retry.HTTPClient(opts.CallTimeout)
	if faulted && opts.Faults.HasNetwork(fault.SideOutbound) {
		httpc.Transport = fault.NewTransport(httpc.Transport, opts.Faults, func(format string, args ...any) {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		})
	}
	client := &chaosClient{
		base:     srv.base,
		client:   httpc,
		retryFor: opts.RetryFor,
	}

	done := make(chan struct{})
	var completed atomic.Int64
	var killerWG sync.WaitGroup
	if rep != nil && opts.Kills > 0 {
		// Progress-triggered kill points: each kill fires once a randomized
		// number of sessions (within the first ~85% of the run) has
		// completed, plus a small random delay so the SIGKILL lands at an
		// arbitrary instruction — mid-round, mid-journal-append,
		// mid-checkpoint — rather than on a session boundary.
		rng := rand.New(rand.NewSource(opts.Seed))
		points := make([]int, opts.Kills)
		for k := range points {
			points[k] = rng.Intn(opts.Sessions*17/20 + 1)
		}
		sortInts(points)
		killerWG.Add(1)
		go func() {
			defer killerWG.Done()
			for k, point := range points {
				for completed.Load() < int64(point) {
					select {
					case <-done:
						return
					case <-time.After(2 * time.Millisecond):
					}
				}
				jitter := time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
				select {
				case <-done:
					return
				case <-time.After(jitter):
				}
				// Fault counters live in server memory and die with the
				// process: sample them before the SIGKILL (best-effort —
				// /stats stays served even in degraded mode).
				if st, err := srv.stats(); err == nil {
					ks.addFaultStats(st)
				}
				srv.kill()
				fmt.Fprintf(opts.Log, "chaos: kill %d/%d (at %d completed sessions, +%s), restarting\n",
					k+1, opts.Kills, completed.Load(), jitter)
				if err := srv.start(); err != nil {
					fmt.Fprintf(opts.Log, "chaos: restart failed: %v\n", err)
					return
				}
				ks.restarts++
				if st, err := srv.stats(); err == nil {
					ks.restored += st.SessionsRestored
					ks.replayed += st.SessionsReplayed
					ks.records += st.WALRecordsReplayed
					ks.recoveryTotal += st.RecoveryNs
					if st.RecoveryNs > ks.recoveryMax {
						ks.recoveryMax = st.RecoveryNs
					}
				}
			}
		}()
	}

	out := make([]sessionOutcome, opts.Sessions)
	par.Do(opts.Sessions, opts.Workers, func(i int) {
		sc := opts.Corpus[i%len(opts.Corpus)]
		o, err := driveSession(client, sc, opts.MaxCandidates)
		out[i] = sessionOutcome{outcome: o, err: err}
		completed.Add(1)
	})
	close(done)
	killerWG.Wait()
	ks.retries = client.retries.Load()
	if faulted {
		// The final process generation was never sampled by the killer.
		if st, err := srv.stats(); err == nil {
			ks.addFaultStats(st)
		}
	}
	return out, ks, nil
}

// sortInts is a tiny insertion sort (kill counts are single digits).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
