package tupleclass

import (
	"math/rand"
	"testing"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

// example51Space builds the paper's Example 5.1: T(A,B,C) numeric, QC =
// {Q1 = σ(A≤50 ∧ B>60), Q2 = σ(A>40 ∧ A≤80 ∧ B≤20)}.
func example51Space(t *testing.T) *Space {
	t.Helper()
	rel := relation.New("T", relation.NewSchema(
		"T.A", relation.KindInt, "T.B", relation.KindInt, "T.C", relation.KindInt))
	rel.Append(
		relation.NewTuple(48, 3, 25),
		relation.NewTuple(10, 70, 1),
		relation.NewTuple(60, 30, 2),
		relation.NewTuple(90, 90, 3),
	)
	q1 := &algebra.Query{Name: "Q1", Tables: []string{"T"}, Projection: []string{"T.C"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.A", algebra.OpLE, relation.Int(50)),
			algebra.NewTerm("T.B", algebra.OpGT, relation.Int(60)),
		}}}
	q2 := &algebra.Query{Name: "Q2", Tables: []string{"T"}, Projection: []string{"T.C"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.A", algebra.OpGT, relation.Int(40)),
			algebra.NewTerm("T.A", algebra.OpLE, relation.Int(80)),
			algebra.NewTerm("T.B", algebra.OpLE, relation.Int(20)),
		}}}
	s, err := NewSpace(rel, []*algebra.Query{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExample51DomainPartitions(t *testing.T) {
	s := example51Space(t)
	if len(s.Attrs) != 2 || s.Attrs[0] != "T.A" || s.Attrs[1] != "T.B" {
		t.Fatalf("Attrs = %v (C has no predicates and must be absent)", s.Attrs)
	}
	// Paper: P_QC(A) = {[-∞,40], (40,50], (50,80], (80,∞]} — 4 subsets.
	if got := len(s.Parts[0].Subsets); got != 4 {
		t.Errorf("|P_QC(A)| = %d, want 4: %v", got, s.Parts[0])
	}
	// Paper: P_QC(B) = {[-∞,20], (20,60], (60,∞]} — 3 subsets.
	if got := len(s.Parts[1].Subsets); got != 3 {
		t.Errorf("|P_QC(B)| = %d, want 3: %v", got, s.Parts[1])
	}
	if s.MaxSubsets() != 4 || s.NumPredicateAttrs() != 2 {
		t.Errorf("k=%d n=%d, want 4, 2", s.MaxSubsets(), s.NumPredicateAttrs())
	}
}

func TestExample51SubsetMembership(t *testing.T) {
	s := example51Space(t)
	a := s.Parts[0]
	// Values in the same paper subset must map to the same partition block.
	same := [][]int64{{-5, 0, 40}, {41, 48, 50}, {51, 60, 80}, {81, 90, 1000}}
	for _, group := range same {
		first := a.SubsetOf(relation.Int(group[0]))
		if first < 0 {
			t.Fatalf("value %d unclassified", group[0])
		}
		for _, v := range group[1:] {
			if got := a.SubsetOf(relation.Int(v)); got != first {
				t.Errorf("A=%d in subset %d, want %d (same block as %d)", v, got, first, group[0])
			}
		}
	}
	// Values in different paper subsets must map to different blocks.
	reps := []int64{40, 48, 60, 90}
	seen := map[int]int64{}
	for _, v := range reps {
		b := a.SubsetOf(relation.Int(v))
		if prev, dup := seen[b]; dup {
			t.Errorf("A=%d and A=%d should be in different subsets", prev, v)
		}
		seen[b] = v
	}
}

func TestExample53ClassMembership(t *testing.T) {
	s := example51Space(t)
	// Paper Example 5.3: tuple (48, 3, 25) belongs to class ((40,50],
	// [-∞,20]); i.e. it shares a class with any tuple whose A∈(40,50] and
	// B≤20.
	c1, err := s.ClassOf(relation.NewTuple(48, 3, 25))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s.ClassOf(relation.NewTuple(45, 20, 99))
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2) {
		t.Errorf("(48,3) and (45,20) should share a tuple class: %v vs %v", c1, c2)
	}
	c3, _ := s.ClassOf(relation.NewTuple(48, 30, 99))
	if c1.Equal(c3) {
		t.Error("(48,3) and (48,30) differ on P(B) and must be in different classes")
	}
}

func TestClassMatchesAgreesWithPredicate(t *testing.T) {
	// The defining tuple-class property: class matches Q iff every member
	// tuple satisfies Q. Cross-check Matches against direct evaluation on
	// random tuples.
	s := example51Space(t)
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		tup := relation.NewTuple(rnd.Intn(200)-50, rnd.Intn(200)-50, rnd.Intn(10))
		c, err := s.ClassOf(tup)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range s.Queries {
			direct := q.Pred.Matches(s.Joined.Schema, tup)
			if got := s.Matches(c, qi); got != direct {
				t.Fatalf("tuple %v class %v: Matches(%s)=%v, predicate says %v",
					tup, c, q.Name, got, direct)
			}
		}
	}
}

func TestSourceClasses(t *testing.T) {
	s := example51Space(t)
	scs, err := s.SourceClasses()
	if err != nil {
		t.Fatal(err)
	}
	// The 4 data tuples have distinct (A,B) region combinations:
	// (48,3): A(40,50], B≤20 ; (10,70): A≤40, B>60 ; (60,30): A(50,80],
	// B(20,60] ; (90,90): A>80, B>60 — 4 distinct classes.
	if len(scs) != 4 {
		t.Fatalf("source classes = %d, want 4", len(scs))
	}
	total := 0
	for _, sc := range scs {
		total += len(sc.Rows)
	}
	if total != s.Joined.Len() {
		t.Errorf("source classes cover %d tuples, want %d", total, s.Joined.Len())
	}
}

func TestEnumerateClassesAt(t *testing.T) {
	s := example51Space(t)
	src, _ := s.ClassOf(relation.NewTuple(48, 3, 25))
	count1 := 0
	s.EnumerateClassesAt(src, 1, func(c Class) bool {
		if c.Distance(src) != 1 {
			t.Errorf("distance-1 enumeration produced distance %d", c.Distance(src))
		}
		count1++
		return true
	})
	// (kA-1) + (kB-1) = 3 + 2 = 5.
	if count1 != 5 {
		t.Errorf("distance-1 classes = %d, want 5", count1)
	}
	count2 := 0
	s.EnumerateClassesAt(src, 2, func(c Class) bool {
		if c.Distance(src) != 2 {
			t.Errorf("distance-2 enumeration produced distance %d", c.Distance(src))
		}
		count2++
		return true
	})
	// 3 * 2 = 6 combinations.
	if count2 != 6 {
		t.Errorf("distance-2 classes = %d, want 6", count2)
	}
	// Early termination.
	n := 0
	s.EnumerateClassesAt(src, 1, func(Class) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("yield=false should stop enumeration, got %d", n)
	}
	// Degenerate distances.
	s.EnumerateClassesAt(src, 0, func(Class) bool { t.Error("dist 0 must be empty"); return true })
	s.EnumerateClassesAt(src, 99, func(Class) bool { t.Error("dist>n must be empty"); return true })
}

func TestCategoricalPartitionExample52(t *testing.T) {
	// Paper Example 5.2: domain {a..g}, Q1 = σ(A ∈ {b,c,e}), Q2 =
	// σ(A ∈ {a,b,d,e}) — P_QC(A) = {{a,d},{b,e},{c},{f,g}} plus possibly a
	// fresh synthetic value whose signature matches {f,g} (satisfies
	// neither) and therefore folds into it: exactly 4 subsets.
	rel := relation.New("T", relation.NewSchema("T.A", relation.KindString))
	for _, v := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		rel.Append(relation.NewTuple(v))
	}
	mkIn := func(vals ...string) algebra.Term {
		set := make([]relation.Value, len(vals))
		for i, v := range vals {
			set[i] = relation.Str(v)
		}
		return algebra.NewSetTerm("T.A", algebra.OpIn, set)
	}
	q1 := &algebra.Query{Name: "Q1", Tables: []string{"T"}, Projection: []string{"T.A"},
		Pred: algebra.Predicate{algebra.Conjunct{mkIn("b", "c", "e")}}}
	q2 := &algebra.Query{Name: "Q2", Tables: []string{"T"}, Projection: []string{"T.A"},
		Pred: algebra.Predicate{algebra.Conjunct{mkIn("a", "b", "d", "e")}}}
	s, err := NewSpace(rel, []*algebra.Query{q1, q2})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Parts[0]
	if len(p.Subsets) != 4 {
		t.Fatalf("|P_QC(A)| = %d, want 4: %v", len(p.Subsets), p)
	}
	pairsSame := [][2]string{{"a", "d"}, {"b", "e"}, {"f", "g"}}
	for _, pr := range pairsSame {
		if p.SubsetOf(relation.Str(pr[0])) != p.SubsetOf(relation.Str(pr[1])) {
			t.Errorf("%q and %q should share a subset", pr[0], pr[1])
		}
	}
	if p.SubsetOf(relation.Str("c")) == p.SubsetOf(relation.Str("b")) {
		t.Error("c satisfies only Q1 and must be alone")
	}
	// A completely unknown value folds into the neither-query subset.
	if p.SubsetOf(relation.Str("zzz")) != p.SubsetOf(relation.Str("f")) {
		t.Error("unknown value should land in the 'satisfies nothing' subset")
	}
}

func TestFreshSubsetSynthesised(t *testing.T) {
	// With an equality predicate covering the whole active domain, the
	// "no value" subset requires a synthesized fresh value.
	rel := relation.New("T", relation.NewSchema("T.A", relation.KindString))
	rel.Append(relation.NewTuple("x"))
	q := &algebra.Query{Name: "Q", Tables: []string{"T"}, Projection: []string{"T.A"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.A", algebra.OpEQ, relation.Str("x"))}}}
	s, err := NewSpace(rel, []*algebra.Query{q})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Parts[0]
	if len(p.Subsets) != 2 {
		t.Fatalf("want 2 subsets (={x}, other), got %v", p)
	}
	foundFresh := false
	for _, sub := range p.Subsets {
		if sub.Fresh {
			foundFresh = true
			if sub.Rep.S == "x" {
				t.Error("fresh rep must differ from active values")
			}
		}
	}
	if !foundFresh {
		t.Error("expected a synthesized fresh subset")
	}
}

func TestPairCasesLemma51(t *testing.T) {
	s := example51Space(t)
	// src: A∈(40,50], B≤20 — matches Q2 only.
	src, _ := s.ClassOf(relation.NewTuple(48, 3, 0))
	// dst: A∈(40,50], B>60 — matches Q1 only.
	dst, _ := s.ClassOf(relation.NewTuple(48, 70, 0))
	p := NewPair(src, dst)
	if p.EditCost != 1 {
		t.Errorf("edit cost = %d, want 1 (only B changes)", p.EditCost)
	}
	if got := s.CaseOf(p, 0); got != caseAdd {
		t.Errorf("Q1 case = %d, want add", got)
	}
	if got := s.CaseOf(p, 1); got != caseRemove {
		t.Errorf("Q2 case = %d, want remove", got)
	}
	// Projection is T.C which never changes, so a both-match pair is
	// invisible (x = x' collapse). Build Q3 = A>40 matched by src and dst.
	q3 := &algebra.Query{Name: "Q3", Tables: []string{"T"}, Projection: []string{"T.C"},
		Pred: algebra.Predicate{algebra.Conjunct{
			algebra.NewTerm("T.A", algebra.OpGT, relation.Int(40))}}}
	s2, err := NewSpace(s.Joined, append(append([]*algebra.Query{}, s.Queries...), q3))
	if err != nil {
		t.Fatal(err)
	}
	src2, _ := s2.ClassOf(relation.NewTuple(48, 3, 0))
	dst2, _ := s2.ClassOf(relation.NewTuple(48, 70, 0))
	p2 := NewPair(src2, dst2)
	if got := s2.CaseOf(p2, 2); got != caseNone {
		t.Errorf("both-match with unchanged projection must be caseNone, got %d", got)
	}
}

func TestPartitionOfGroupsQueries(t *testing.T) {
	s := example51Space(t)
	src, _ := s.ClassOf(relation.NewTuple(48, 3, 0))
	dst, _ := s.ClassOf(relation.NewTuple(48, 70, 0))
	groups, _ := s.PartitionOf([]Pair{NewPair(src, dst)})
	// Q1 gains a tuple, Q2 loses one: they must separate.
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2", groups)
	}
	sizes := s.PartitionSizes([]Pair{NewPair(src, dst)})
	if len(sizes) != 2 || sizes[0]+sizes[1] != 2 {
		t.Errorf("sizes = %v", sizes)
	}
	// No modification: single group.
	groups0, _ := s.PartitionOf(nil)
	if len(groups0) != 1 || len(groups0[0]) != 2 {
		t.Errorf("empty pair set should not split: %v", groups0)
	}
}

func TestPartitionAtMost4PowNQuick(t *testing.T) {
	// Lemma 5.1: n modified tuples partition QC into at most 4^n subsets.
	s := example51Space(t)
	scs, _ := s.SourceClasses()
	rnd := rand.New(rand.NewSource(9))
	var allPairs []Pair
	for _, sc := range scs {
		s.EnumerateClassesAt(sc.Class, 1, func(d Class) bool {
			allPairs = append(allPairs, NewPair(sc.Class, d))
			return true
		})
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rnd.Intn(3)
		pairs := make([]Pair, n)
		for i := range pairs {
			pairs[i] = allPairs[rnd.Intn(len(allPairs))]
		}
		sizes := s.PartitionSizes(pairs)
		bound := 1
		for i := 0; i < n; i++ {
			bound *= 4
		}
		if len(sizes) > bound {
			t.Fatalf("partition into %d subsets exceeds 4^%d", len(sizes), n)
		}
		total := 0
		for _, sz := range sizes {
			total += sz
		}
		if total != len(s.Queries) {
			t.Fatalf("partition loses queries: %v", sizes)
		}
	}
}

func TestSymbolicResultEdits(t *testing.T) {
	s := example51Space(t)
	src, _ := s.ClassOf(relation.NewTuple(48, 3, 0))
	dst, _ := s.ClassOf(relation.NewTuple(48, 70, 0))
	edits, groups := s.SymbolicResultEdits([]Pair{NewPair(src, dst)}, 1)
	if len(edits) != len(groups) {
		t.Fatal("edits and groups must align")
	}
	for bi, g := range groups {
		// Q1 (add) and Q2 (remove) each cost arity(R) = 1.
		if edits[bi] != 1 {
			t.Errorf("block %v edit = %d, want 1", g, edits[bi])
		}
	}
}

func TestIndistinguishableGroups(t *testing.T) {
	rel := relation.New("T", relation.NewSchema("T.A", relation.KindInt))
	rel.Append(relation.NewTuple(1), relation.NewTuple(5))
	mk := func(name string, op algebra.Op, c int64) *algebra.Query {
		return &algebra.Query{Name: name, Tables: []string{"T"}, Projection: []string{"T.A"},
			Pred: algebra.Predicate{algebra.Conjunct{algebra.NewTerm("T.A", op, relation.Int(c))}}}
	}
	// A>3 and A>=4 differ on no probed subset boundary... actually they do:
	// the partition has cut points at 3 and 4; values in (3,4) distinguish
	// them, but only if an integer exists there — it does not. A>3 ≡ A>=4
	// over the integers.
	qa := mk("Qa", algebra.OpGT, 3)
	qb := mk("Qb", algebra.OpGE, 4)
	qc := mk("Qc", algebra.OpGT, 4)
	s, err := NewSpace(rel, []*algebra.Query{qa, qb, qc})
	if err != nil {
		t.Fatal(err)
	}
	groups := s.IndistinguishableGroups(10000)
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want {Qa,Qb} and {Qc}", groups)
	}
	for _, g := range groups {
		if len(g) == 2 {
			if !(g[0] == 0 && g[1] == 1) {
				t.Errorf("merged group = %v, want Qa,Qb", g)
			}
		}
	}
}

func TestMatchVector(t *testing.T) {
	s := example51Space(t)
	c, _ := s.ClassOf(relation.NewTuple(48, 3, 0))
	v := s.MatchVector(c)
	if v[0] || !v[1] {
		t.Errorf("MatchVector = %v, want [false true]", v)
	}
}

func TestClassKeyAndClone(t *testing.T) {
	c := Class{1, 2, 3}
	if c.Key() != "1,2,3" {
		t.Errorf("Key = %q", c.Key())
	}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Error("Clone must copy")
	}
	if c.Equal(d) || !c.Equal(Class{1, 2, 3}) {
		t.Error("Equal broken")
	}
	if c.Equal(Class{1, 2}) {
		t.Error("length mismatch should not be equal")
	}
	if c.Distance(Class{1, 9, 3}) != 1 {
		t.Error("Distance broken")
	}
}
