package tupleclass

import (
	"sort"
	"sync/atomic"

	"qfe/internal/par"
)

// Pair is an (STC, DTC) pair: an abstract single-tuple modification that
// moves some tuple of class Src into class Dst (§5.1). EditCost is the
// paper's minEdit(s, d): the number of attribute subsets changed.
type Pair struct {
	Src, Dst Class
	EditCost int
}

// NewPair builds a pair and computes its edit cost.
func NewPair(src, dst Class) Pair {
	return Pair{Src: src, Dst: dst, EditCost: src.Distance(dst)}
}

// Key canonically encodes the pair.
func (p Pair) Key() string { return p.Src.Key() + "->" + p.Dst.Key() }

// ChangedAttrs returns the indexes (into Space.Attrs) of attributes whose
// subset differs between Src and Dst.
func (p Pair) ChangedAttrs() []int {
	var out []int
	for i := range p.Src {
		if p.Src[i] != p.Dst[i] {
			out = append(out, i)
		}
	}
	return out
}

// Lemma 5.1 case codes: the effect of one modified tuple on one query's
// result. caseReplace applies only when the modification touches a projected
// attribute; otherwise the removed and added projected values coincide
// (x = x') and the result is unchanged (caseNone).
const (
	caseNone    = 0 // neither old nor new tuple matches, or x = x'
	caseAdd     = 1 // new tuple enters the result
	caseRemove  = 2 // old tuple leaves the result
	caseReplace = 3 // result tuple x replaced by x'
)

// CaseOf computes the Lemma 5.1 case of pair p for query qi. For queries
// with set semantics (DISTINCT), removals may be masked by surviving
// duplicates, so the symbolic model conservatively treats caseRemove as
// caseNone and caseReplace as caseAdd — the paper's §6.1 "second approach",
// which distinguishes queries through inserted values only. The concrete
// partition computed after concretization remains exact either way.
//
// CaseOf sits inside Algorithm 3's enumeration loop (once per query per
// enumerated pair), so the changed-attribute scan is inlined rather than
// materialised through ChangedAttrs — zero allocations.
func (s *Space) CaseOf(p Pair, qi int) uint8 {
	srcM, dstM := s.Matches(p.Src, qi), s.Matches(p.Dst, qi)
	projChanged := false
	for a := range p.Src {
		if p.Src[a] != p.Dst[a] && s.projected[qi][a] {
			projChanged = true
			break
		}
	}
	distinct := s.Queries[qi].Distinct
	switch {
	case !srcM && !dstM:
		return caseNone
	case !srcM && dstM:
		return caseAdd
	case srcM && !dstM:
		if distinct {
			return caseNone
		}
		return caseRemove
	default: // both match
		if !projChanged {
			return caseNone
		}
		if distinct {
			return caseAdd
		}
		return caseReplace
	}
}

// ReplaceCost returns the cost of a caseReplace effect of pair p on query
// qi: the number of changed attributes that are projected by qi (each is one
// in-place result-tuple modification). Like CaseOf it inlines the
// changed-attribute scan (no ChangedAttrs slice).
func (s *Space) ReplaceCost(p Pair, qi int) int {
	n := 0
	for a := range p.Src {
		if p.Src[a] != p.Dst[a] && s.projected[qi][a] {
			n++
		}
	}
	return n
}

// PartitionOf symbolically partitions the candidate queries by their
// predicted result on a database modified according to the given pairs: two
// queries land in the same block exactly when every pair affects them the
// same way. It returns the per-block query indexes, deterministically
// ordered, plus the per-block case vectors.
func (s *Space) PartitionOf(pairs []Pair) ([][]int, [][]uint8) {
	if len(pairs) <= 32 {
		return s.partitionPacked(pairs)
	}
	type block struct {
		queries []int
		cases   []uint8
	}
	byKey := make(map[string]*block)
	order := make([]string, 0, 4)
	for qi := range s.Queries {
		cases := make([]uint8, len(pairs))
		for pi, p := range pairs {
			cases[pi] = s.CaseOf(p, qi)
		}
		k := string(cases)
		b := byKey[k]
		if b == nil {
			b = &block{cases: cases}
			byKey[k] = b
			order = append(order, k)
		}
		b.queries = append(b.queries, qi)
	}
	sort.Strings(order)
	groups := make([][]int, len(order))
	caseVecs := make([][]uint8, len(order))
	for i, k := range order {
		groups[i] = byKey[k].queries
		caseVecs[i] = byKey[k].cases
	}
	return groups, caseVecs
}

// partitionPacked is PartitionOf for up to 32 pairs: the case vector packs
// into a uint64 (2 bits per pair, first pair in the highest-order bits so
// numeric order equals the lexicographic order sort.Strings imposes on the
// byte-string keys), grouping through a small linear-scanned slice instead
// of a map of byte strings. Output is byte-identical to the generic path.
func (s *Space) partitionPacked(pairs []Pair) ([][]int, [][]uint8) {
	type block struct {
		key     uint64
		queries []int
	}
	blocks := make([]block, 0, 8)
	// Linear scan while few blocks exist; an index map takes over past 32
	// so diverse case vectors never make the grouping quadratic in |QC|.
	var blockIdx map[uint64]int
	for qi := range s.Queries {
		var k uint64
		for _, p := range pairs {
			k = k<<2 | uint64(s.CaseOf(p, qi))
		}
		found := -1
		if blockIdx != nil {
			if bi, ok := blockIdx[k]; ok {
				found = bi
			}
		} else {
			for bi := range blocks {
				if blocks[bi].key == k {
					found = bi
					break
				}
			}
		}
		if found < 0 {
			found = len(blocks)
			blocks = append(blocks, block{key: k})
			if blockIdx != nil {
				blockIdx[k] = found
			} else if len(blocks) > 32 {
				blockIdx = make(map[uint64]int, len(s.Queries))
				for bi := range blocks {
					blockIdx[blocks[bi].key] = bi
				}
			}
		}
		blocks[found].queries = append(blocks[found].queries, qi)
	}
	sort.Slice(blocks, func(a, b int) bool { return blocks[a].key < blocks[b].key })
	groups := make([][]int, len(blocks))
	caseVecs := make([][]uint8, len(blocks))
	for i, b := range blocks {
		groups[i] = b.queries
		cases := make([]uint8, len(pairs))
		k := b.key
		for pi := len(pairs) - 1; pi >= 0; pi-- {
			cases[pi] = uint8(k & 3)
			k >>= 2
		}
		caseVecs[i] = cases
	}
	return groups, caseVecs
}

// PartitionSizes returns just the block sizes of PartitionOf (the input to
// the balance score).
func (s *Space) PartitionSizes(pairs []Pair) []int {
	groups, _ := s.PartitionOf(pairs)
	sizes := make([]int, len(groups))
	for i, g := range groups {
		sizes[i] = len(g)
	}
	return sizes
}

// PartitionSizes1 is PartitionSizes specialised to a single pair — the shape
// Algorithm 3 scores once per enumerated (STC, DTC) pair. A single pair
// admits only the four Lemma 5.1 case codes, so the sizes are a 4-counter
// tally with no map, no case-vector slices and no key strings; blocks come
// out in ascending case order, exactly as the generic path sorts them.
func (s *Space) PartitionSizes1(p Pair) []int {
	var counts [4]int
	for qi := range s.Queries {
		counts[s.CaseOf(p, qi)]++
	}
	sizes := make([]int, 0, 4)
	for _, c := range counts {
		if c > 0 {
			sizes = append(sizes, c)
		}
	}
	return sizes
}

// SymbolicResultEdits predicts minEdit(R, Rᵢ) for each partition block: an
// added or removed result tuple costs the arity of R (insert/delete); a
// replaced tuple costs the number of modified projected attributes. The
// projection is taken from the block's first query (all candidate queries
// of a QFE session share ℓ, per §5).
func (s *Space) SymbolicResultEdits(pairs []Pair, arityR int) ([]int, [][]int) {
	groups, caseVecs := s.PartitionOf(pairs)
	edits := make([]int, len(groups))
	for bi, cases := range caseVecs {
		qi := groups[bi][0]
		total := 0
		for pi, c := range cases {
			switch c {
			case caseAdd, caseRemove:
				total += arityR
			case caseReplace:
				for _, a := range pairs[pi].ChangedAttrs() {
					if s.projected[qi][a] {
						total++
					}
				}
			}
		}
		edits[bi] = total
	}
	return edits, groups
}

// IndistinguishableGroups clusters queries whose match bit agrees on every
// subset combination reachable by modifications — i.e. queries with equal
// truth tables over the whole class space. Such queries produce identical
// results on every database whose values stay within the probed partitions,
// so QFE merges them up front and reports the group (§2: QFE terminates
// when one query — here, one equivalence class — remains).
//
// Two queries' truth tables can differ only on the attributes either of
// them mentions, so equivalence is decided pairwise over the joint class
// space of the *pair's* attributes — exponential only in the pair's
// attribute count, never in the whole space's. Pairs whose joint space
// exceeds maxCombos are conservatively treated as distinguishable; if they
// are in fact equivalent the database generator discovers it later via
// ErrNoSplit, so correctness is unaffected.
func (s *Space) IndistinguishableGroups(maxCombos int) [][]int {
	return s.IndistinguishableGroupsParallel(maxCombos, 1)
}

// IndistinguishableGroupsParallel is IndistinguishableGroups with the
// truth-table comparisons against the existing group representatives run on
// a worker pool (parallelism 0 = GOMAXPROCS, 1 = serial). The serial sweep
// places a query into the first (lowest-indexed) matching group, so the
// parallel path evaluates all comparisons and then takes the minimum
// matching index — byte-identical grouping, regardless of worker timing.
// Workers may speculatively evaluate comparisons the serial sweep would
// have skipped (those past the first match); the gi < best precheck prunes
// checks started after a match lands, bounding the waste to roughly one
// in-flight check per worker, paid on cores the serial path leaves idle.
func (s *Space) IndistinguishableGroupsParallel(maxCombos, parallelism int) [][]int {
	if maxCombos <= 0 {
		maxCombos = 100000
	}
	workers := par.Workers(parallelism)
	// Group by representative: truth-table equality is transitive, so
	// comparing against one representative per group suffices.
	var groups [][]int
	for qi := range s.Queries {
		placed := -1
		if workers > 1 && len(groups) > 1 {
			best := atomic.Int64{}
			best.Store(int64(len(groups)))
			par.Do(len(groups), workers, func(gi int) {
				if int64(gi) < best.Load() && s.equivalentPair(groups[gi][0], qi, maxCombos) {
					// Keep the lowest matching index (CAS loop: several groups
					// can match when the rep-vs-rep check was truncated by
					// maxCombos and conservatively treated as distinct).
					for {
						cur := best.Load()
						if int64(gi) >= cur || best.CompareAndSwap(cur, int64(gi)) {
							break
						}
					}
				}
			})
			if int(best.Load()) < len(groups) {
				placed = int(best.Load())
			}
		} else {
			for gi := range groups {
				if s.equivalentPair(groups[gi][0], qi, maxCombos) {
					placed = gi
					break
				}
			}
		}
		if placed >= 0 {
			groups[placed] = append(groups[placed], qi)
		} else {
			groups = append(groups, []int{qi})
		}
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a][0] < groups[b][0] })
	return groups
}

// queryParts returns the partition indexes referenced by query qi.
func (s *Space) queryParts(qi int) []int {
	seen := map[int]bool{}
	var out []int
	for _, conj := range s.programs[qi] {
		for _, ref := range conj {
			if !seen[ref.part] {
				seen[ref.part] = true
				out = append(out, ref.part)
			}
		}
	}
	sort.Ints(out)
	return out
}

// equivalentPair reports whether queries qi and qj agree on every
// *reachable* class of the joint space of their own predicate attributes:
// free attributes range over their whole partition, frozen attributes only
// over the subsets realized by the joined tuples (a reachable modification
// never changes a frozen value, so unrealized frozen coordinates cannot
// occur on any reachable database). It returns false (distinguishable)
// when that space exceeds maxCombos.
func (s *Space) equivalentPair(qi, qj, maxCombos int) bool {
	partSet := map[int]bool{}
	for _, p := range s.queryParts(qi) {
		partSet[p] = true
	}
	for _, p := range s.queryParts(qj) {
		partSet[p] = true
	}
	parts := make([]int, 0, len(partSet))
	for p := range partSet {
		parts = append(parts, p)
	}
	sort.Ints(parts)

	// options[i] is the subset range explored for parts[i]; nil means the
	// whole partition.
	options := make([][]int, len(parts))
	combos := 1
	for i, p := range parts {
		n := len(s.Parts[p].Subsets)
		if s.frozen[p] && s.realized != nil {
			options[i] = s.realized[p]
			n = len(options[i])
		}
		if n == 0 {
			return true // no reachable class involves this attribute
		}
		combos *= n
		if combos > maxCombos {
			return false
		}
	}
	c := make(Class, len(s.Parts)) // irrelevant positions stay 0
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(parts) {
			return s.Matches(c, qi) == s.Matches(c, qj)
		}
		p := parts[i]
		if opts := options[i]; opts != nil {
			for _, sub := range opts {
				c[p] = sub
				if !rec(i + 1) {
					return false
				}
			}
			return true
		}
		for sub := range s.Parts[p].Subsets {
			c[p] = sub
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}
