package tupleclass

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

// Class identifies one tuple class: the subset index chosen for each
// predicate attribute (aligned with Space.Parts). Attributes without
// predicates are irrelevant to query membership and are not part of the
// class (the paper's classes range only over P_QC(A) of predicate
// attributes).
type Class []int

// Hash64 returns a 64-bit hash of the class (subset indexes folded through
// the relation kernel's word hash). Kernel paths bucket classes by it and
// verify with Equal on collision, so Key strings are built once per
// distinct class, not once per tuple.
func (c Class) Hash64() uint64 { return relation.HashInts(c) }

// Key returns a canonical encoding usable as a map key.
func (c Class) Key() string {
	var b strings.Builder
	for i, s := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// Equal reports whether two classes coincide.
func (c Class) Equal(d Class) bool {
	if len(c) != len(d) {
		return false
	}
	for i := range c {
		if c[i] != d[i] {
			return false
		}
	}
	return true
}

// Clone copies the class.
func (c Class) Clone() Class {
	d := make(Class, len(c))
	copy(d, c)
	return d
}

// Distance returns the Hamming distance between two classes — the paper's
// minEdit(s, d) for an (STC, DTC) pair: one attribute modification per
// differing subset.
func (c Class) Distance(d Class) int {
	n := 0
	for i := range c {
		if c[i] != d[i] {
			n++
		}
	}
	return n
}

// termRef locates a term inside the space: partition index and term index
// within that partition.
type termRef struct{ part, term int }

// Space ties together the joined relation, the candidate queries, and the
// per-attribute domain partitions; it answers "does class C match query Q"
// in O(|predicate|) using precompiled term references.
type Space struct {
	Joined  *relation.Relation
	Queries []*algebra.Query
	// Attrs lists the selection-predicate attributes (sorted, deduplicated
	// across all queries); Parts is aligned with it.
	Attrs []string
	Parts []*Partition
	// frozen marks attributes (aligned with Attrs) the modification model
	// must not change — join-key columns, whose values decide which base
	// tuples join (see Freeze). EnumerateClassesAt never varies a frozen
	// position, so no planned (STC, DTC) pair rewrites join structure.
	frozen []bool
	// realized[i] lists the subset indexes of Parts[i] occupied by the
	// joined tuples (sorted), computed by Freeze. Reachable modifications
	// keep every tuple's frozen values, so equivalence over the class space
	// restricts frozen attributes to these subsets: classes with unrealized
	// frozen coordinates can never arise on a reachable database.
	realized [][]int

	// programs[q] holds, per conjunct of query q, the refs of its terms.
	programs [][][]termRef
	// projected[q][i] reports whether Attrs[i] occurs in query q's
	// projection list (needed for the x = x' collapse of Lemma 5.1).
	projected [][]bool
}

// NewSpace builds the tuple-class space for a joined relation and candidate
// query set. Every query predicate attribute must be a column of the joined
// relation.
func NewSpace(joined *relation.Relation, queries []*algebra.Query) (*Space, error) {
	s := &Space{Joined: joined, Queries: queries}

	// Collect terms per attribute, deduplicated by canonical key.
	termsByAttr := make(map[string]map[string]algebra.Term)
	for _, q := range queries {
		for _, t := range q.Pred.Terms() {
			m := termsByAttr[t.Attr]
			if m == nil {
				m = make(map[string]algebra.Term)
				termsByAttr[t.Attr] = m
			}
			m[t.Key()] = t
		}
	}
	s.Attrs = make([]string, 0, len(termsByAttr))
	for a := range termsByAttr {
		s.Attrs = append(s.Attrs, a)
	}
	sort.Strings(s.Attrs)

	attrIdx := make(map[string]int, len(s.Attrs))
	for i, a := range s.Attrs {
		attrIdx[a] = i
	}

	s.frozen = make([]bool, len(s.Attrs))
	s.Parts = make([]*Partition, len(s.Attrs))
	for i, a := range s.Attrs {
		col := joined.Schema.IndexOf(a)
		if col < 0 {
			return nil, fmt.Errorf("tupleclass: predicate attribute %q not in joined schema", a)
		}
		terms := make([]algebra.Term, 0, len(termsByAttr[a]))
		keys := make([]string, 0, len(termsByAttr[a]))
		for k := range termsByAttr[a] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			terms = append(terms, termsByAttr[a][k])
		}
		s.Parts[i] = buildPartition(a, col, joined.Schema[col].Type, terms, joined.ActiveDomain(a))
	}

	// Compile query predicates into term references.
	s.programs = make([][][]termRef, len(queries))
	s.projected = make([][]bool, len(queries))
	for qi, q := range queries {
		prog := make([][]termRef, len(q.Pred))
		for ci, conj := range q.Pred {
			refs := make([]termRef, len(conj))
			for ti, t := range conj {
				pi := attrIdx[t.Attr]
				found := -1
				key := t.Key()
				for j, pt := range s.Parts[pi].Terms {
					if pt.Key() == key {
						found = j
						break
					}
				}
				if found < 0 {
					return nil, fmt.Errorf("tupleclass: internal: term %s not registered", t)
				}
				refs[ti] = termRef{part: pi, term: found}
			}
			prog[ci] = refs
		}
		s.programs[qi] = prog

		proj := make([]bool, len(s.Attrs))
		for _, col := range q.Projection {
			if i, ok := attrIdx[col]; ok {
				proj[i] = true
			}
		}
		s.projected[qi] = proj
	}
	return s, nil
}

// ClassOf maps a joined tuple to its tuple class.
func (s *Space) ClassOf(t relation.Tuple) (Class, error) {
	c := make(Class, len(s.Parts))
	if err := s.classInto(c, t); err != nil {
		return nil, err
	}
	return c, nil
}

// classInto is ClassOf into a caller-provided buffer (len(s.Parts)), so
// per-tuple loops like SourceClasses allocate a Class only when a new
// distinct class actually appears.
func (s *Space) classInto(c Class, t relation.Tuple) error {
	for i, p := range s.Parts {
		sub := p.SubsetOf(t[p.Col])
		if sub < 0 {
			return fmt.Errorf("tupleclass: value %s of %s falls outside the probed partition",
				t[p.Col], p.Attr)
		}
		c[i] = sub
	}
	return nil
}

// Matches reports whether every tuple of class c satisfies query qi — the
// defining property of tuple classes: the answer is the same for all tuples
// of the class.
func (s *Space) Matches(c Class, qi int) bool {
	prog := s.programs[qi]
	if len(prog) == 0 {
		return true // empty predicate is TRUE
	}
	for _, conj := range prog {
		ok := true
		for _, ref := range conj {
			if !s.Parts[ref.part].Subsets[c[ref.part]].Sig[ref.term] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// MatchVector returns the per-query match bits for a class; two queries are
// indistinguishable by any single-tuple modification space exactly when all
// classes give them equal bits.
func (s *Space) MatchVector(c Class) []bool {
	v := make([]bool, len(s.Queries))
	for qi := range s.Queries {
		v[qi] = s.Matches(c, qi)
	}
	return v
}

// SourceClass groups the joined tuples belonging to one tuple class — a
// source-tuple class (STC) with its inhabitants.
type SourceClass struct {
	Class Class
	Key   string
	Rows  []int // joined-tuple indexes, ascending
}

// SourceClasses maps every joined tuple to its class and returns the
// occupied classes sorted by key (deterministic enumeration order for
// Algorithm 3). Tuples are bucketed by class hash with Equal verification
// on collision, so the per-tuple cost is a hash fold — class buffers and
// Key strings materialise only once per distinct class.
func (s *Space) SourceClasses() ([]SourceClass, error) {
	byHash := make(map[uint64][]*SourceClass)
	var all []*SourceClass
	scratch := make(Class, len(s.Parts))
	for i, t := range s.Joined.Tuples {
		if err := s.classInto(scratch, t); err != nil {
			return nil, err
		}
		h := scratch.Hash64()
		var sc *SourceClass
		for _, cand := range byHash[h] {
			if cand.Class.Equal(scratch) {
				sc = cand
				break
			}
		}
		if sc == nil {
			c := scratch.Clone()
			sc = &SourceClass{Class: c, Key: c.Key()}
			byHash[h] = append(byHash[h], sc)
			all = append(all, sc)
		}
		sc.Rows = append(sc.Rows, i)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Key < all[b].Key })
	out := make([]SourceClass, 0, len(all))
	for _, sc := range all {
		out = append(out, *sc)
	}
	return out, nil
}

// Freeze marks the named attributes (qualified joined-schema columns) as
// structurally unmodifiable. A frozen attribute still participates in tuple
// classification and query membership — its value varies across existing
// tuples — but EnumerateClassesAt never changes it, so the modification
// space contains no edit to it, and IndistinguishableGroups restricts it
// to the subsets the joined tuples actually occupy (any reachable database
// keeps each tuple's frozen values). Callers freeze the join-key columns
// (db.Joined.KeyCols): editing one would change which base tuples join,
// which the in-place replacement model of Lemma 5.1 cannot predict.
//
// Freeze is not safe to call concurrently with the Space's other methods;
// call it right after NewSpace, before the space is shared.
func (s *Space) Freeze(attrs []string) {
	matched := false
	for _, a := range attrs {
		for i, b := range s.Attrs {
			if a == b {
				s.frozen[i] = true
				matched = true
			}
		}
	}
	if !matched || s.realized != nil {
		return
	}
	// Record the realized subset per frozen (indeed, per) partition once;
	// equivalence checks consult it for frozen positions only.
	seen := make([]map[int]bool, len(s.Parts))
	for i := range seen {
		seen[i] = make(map[int]bool)
	}
	for _, t := range s.Joined.Tuples {
		for i, p := range s.Parts {
			if sub := p.SubsetOf(t[p.Col]); sub >= 0 {
				seen[i][sub] = true
			}
		}
	}
	s.realized = make([][]int, len(s.Parts))
	for i, m := range seen {
		subs := make([]int, 0, len(m))
		for sub := range m {
			subs = append(subs, sub)
		}
		sort.Ints(subs)
		s.realized[i] = subs
	}
}

// Frozen reports whether Attrs[i] is frozen.
func (s *Space) Frozen(i int) bool { return s.frozen[i] }

// EnumerateClassesAt enumerates destination classes at exactly Hamming
// distance dist from src, in deterministic order, invoking yield for each.
// Enumeration stops early when yield returns false. This generates the DTC
// candidates of Algorithm 3's i-th round. Frozen attributes are never
// varied (see Freeze).
func (s *Space) EnumerateClassesAt(src Class, dist int, yield func(Class) bool) {
	n := len(s.Parts)
	if dist <= 0 || dist > n {
		return
	}
	positions := make([]int, 0, dist)
	var rec func(start int) bool
	current := src.Clone()
	rec = func(start int) bool {
		if len(positions) == dist {
			return yield(current.Clone())
		}
		for p := start; p < n; p++ {
			if s.frozen[p] {
				continue
			}
			if n-p < dist-len(positions) {
				break
			}
			positions = append(positions, p)
			for sub := range s.Parts[p].Subsets {
				if sub == src[p] {
					continue
				}
				current[p] = sub
				if !rec(p + 1) {
					return false
				}
			}
			current[p] = src[p]
			positions = positions[:len(positions)-1]
		}
		return true
	}
	rec(0)
}

// NumPredicateAttrs returns n, the number of distinct selection-predicate
// attributes (the upper bound of Algorithm 3's outer loop).
func (s *Space) NumPredicateAttrs() int { return len(s.Attrs) }

// MaxSubsets returns k, the largest |P_QC(A)| over the predicate attributes
// (used in the paper's O(m·kⁿ) complexity discussion and by tests).
func (s *Space) MaxSubsets() int {
	k := 0
	for _, p := range s.Parts {
		if len(p.Subsets) > k {
			k = len(p.Subsets)
		}
	}
	return k
}
