// Package tupleclass implements the paper's tuple-class abstraction (§5.1):
// for each selection-predicate attribute A, the domain of A is partitioned
// into the minimum collection of disjoint subsets P_QC(A) such that every
// selection predicate in QC is constant on each subset; a tuple class is one
// choice of subset per attribute. Tuple classes let the database generator
// reason symbolically about the effect of a modification — every query
// either matches all tuples of a class or none (the paper's key property) —
// and source/destination class pairs (STC, DTC) describe single-tuple
// modifications abstractly.
package tupleclass

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qfe/internal/algebra"
	"qfe/internal/relation"
)

// Subset is one block of an attribute's domain partition. All values in the
// block satisfy exactly the same set of predicate terms (Sig).
type Subset struct {
	// Rep is the representative value used when a modification moves a
	// tuple into this subset. Reps are drawn from the active domain when
	// possible so modified databases look realistic (the paper follows
	// Olston et al. in preferring realistic data).
	Rep relation.Value
	// Sig[i] is the truth value of the partition's i-th term on this block.
	Sig []bool
	// FromActive records whether Rep occurs in the joined relation.
	FromActive bool
	// Fresh marks a synthesized categorical value that does not occur
	// anywhere in the data (used by the §6.1 set-semantics strategy).
	Fresh bool
}

// Partition is the domain partition P_QC(A) of one attribute.
type Partition struct {
	Attr string // qualified column name in the joined schema
	Col  int    // column index in the joined schema
	Kind relation.Kind
	// Terms are the deduplicated predicate terms over this attribute, in
	// canonical (Key) order.
	Terms    []algebra.Term
	Subsets  []Subset
	sigIndex map[string]int
	// valIndex maps every probe value (hash-bucketed, KeyEqual-verified on
	// collision) to its subset, covering the whole active domain. It is
	// built once at construction and read-only afterwards, so concurrent
	// classification never needs a lock; values outside the probe set fall
	// back to signature evaluation.
	valIndex map[uint64][]valSub
}

type valSub struct {
	v      relation.Value
	subset int
}

// SubsetOf returns the index of the subset containing v, computed from v's
// term signature. It returns -1 only for signatures outside the probed
// space, which cannot happen for values of the joined relation or reps.
// Probe values — every active-domain value and every subset representative —
// resolve through the precomputed value index with zero allocations; only
// foreign values pay for a signature evaluation.
func (p *Partition) SubsetOf(v relation.Value) int {
	for _, e := range p.valIndex[v.Hash64()] {
		if e.v.KeyEqual(v) {
			return e.subset
		}
	}
	sig := p.signature(v)
	if i, ok := p.sigIndex[sigKey(sig)]; ok {
		return i
	}
	return -1
}

func (p *Partition) signature(v relation.Value) []bool {
	sig := make([]bool, len(p.Terms))
	for i, t := range p.Terms {
		sig[i] = t.Matches(v)
	}
	return sig
}

func sigKey(sig []bool) string {
	b := make([]byte, len(sig))
	for i, s := range sig {
		if s {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// String renders the partition for debugging: attr and subset reps.
func (p *Partition) String() string {
	parts := make([]string, len(p.Subsets))
	for i, s := range p.Subsets {
		tag := ""
		if s.Fresh {
			tag = "*"
		}
		parts[i] = s.Rep.String() + tag
	}
	return fmt.Sprintf("%s{%s}", p.Attr, strings.Join(parts, " | "))
}

// buildPartition constructs P_QC(A) for one attribute from the deduplicated
// terms over it and the attribute's active domain in the joined relation.
func buildPartition(attr string, col int, kind relation.Kind,
	terms []algebra.Term, active []relation.Value) *Partition {

	p := &Partition{Attr: attr, Col: col, Kind: kind, Terms: terms,
		sigIndex: make(map[string]int), valIndex: make(map[uint64][]valSub)}

	// Probe values: active-domain values first (so representatives are
	// realistic), then synthetic probes covering every elementary region
	// induced by the term constants.
	probes := make([]relation.Value, 0, len(active)*2)
	probes = append(probes, active...)
	synth := syntheticProbes(kind, terms, active)
	probes = append(probes, synth...)

	freshFrom := len(active) + len(synth) // probes from here on are "fresh"
	if kind == relation.KindString {
		probes = append(probes, freshValue(attr, terms, probes))
	}

	for i, v := range probes {
		sig := p.signature(v)
		k := sigKey(sig)
		sub, seen := p.sigIndex[k]
		if !seen {
			sub = len(p.Subsets)
			p.sigIndex[k] = sub
			p.Subsets = append(p.Subsets, Subset{
				Rep:        v,
				Sig:        sig,
				FromActive: i < len(active),
				Fresh:      i >= freshFrom,
			})
		}
		// Register the probe in the value index (deduplicated under
		// KeyEqual) so SubsetOf classifies it without re-evaluating terms.
		h := v.Hash64()
		dup := false
		for _, e := range p.valIndex[h] {
			if e.v.KeyEqual(v) {
				dup = true
				break
			}
		}
		if !dup {
			p.valIndex[h] = append(p.valIndex[h], valSub{v: v, subset: sub})
		}
	}
	return p
}

// termConstants extracts every constant mentioned by the terms (scalar
// constants and IN-set members).
func termConstants(terms []algebra.Term) []relation.Value {
	var out []relation.Value
	for _, t := range terms {
		if t.Op == algebra.OpIn || t.Op == algebra.OpNotIn {
			out = append(out, t.Set...)
		} else {
			out = append(out, t.Const)
		}
	}
	return out
}

// syntheticProbes generates values covering every region of the attribute
// domain delimited by the term constants. For numeric attributes: the
// constants themselves, midpoints between consecutive constants, and values
// beyond both extremes. For categorical attributes: the constants.
func syntheticProbes(kind relation.Kind, terms []algebra.Term, active []relation.Value) []relation.Value {
	consts := termConstants(terms)
	if !kind.Numeric() {
		return consts
	}
	// Sorted distinct constant magnitudes.
	fs := make([]float64, 0, len(consts))
	seen := map[float64]bool{}
	for _, c := range consts {
		if !c.Kind.Numeric() {
			continue
		}
		f := c.AsFloat()
		if !seen[f] {
			seen[f] = true
			fs = append(fs, f)
		}
	}
	sort.Float64s(fs)
	var out []relation.Value
	mk := func(f float64) relation.Value {
		if kind == relation.KindInt {
			return relation.Int(int64(f))
		}
		return relation.Float(f)
	}
	if len(fs) == 0 {
		return nil
	}
	if kind == relation.KindInt {
		// Integer probes: around each constant and inside each gap.
		add := func(i int64) { out = append(out, relation.Int(i)) }
		for _, f := range fs {
			fl := int64(math.Floor(f))
			add(fl - 1)
			add(fl)
			add(fl + 1)
			cl := int64(math.Ceil(f))
			if cl != fl {
				add(cl)
				add(cl + 1)
			}
		}
		for i := 0; i+1 < len(fs); i++ {
			// One probe strictly inside each gap, when an integer exists.
			lo, hi := math.Floor(fs[i])+1, math.Ceil(fs[i+1])-1
			if lo <= hi {
				add(int64(lo))
			}
		}
		return out
	}
	// Float probes: the constants, gap midpoints, and beyond the extremes.
	for _, f := range fs {
		out = append(out, mk(f))
	}
	for i := 0; i+1 < len(fs); i++ {
		out = append(out, mk((fs[i]+fs[i+1])/2))
	}
	out = append(out, mk(fs[0]-1), mk(fs[len(fs)-1]+1))
	return out
}

// freshValue synthesizes a string value guaranteed not to collide with any
// probe, representing "a value outside the active domain" (§6.1's insert-
// style distinguishing strategy needs these).
func freshValue(attr string, terms []algebra.Term, taken []relation.Value) relation.Value {
	used := make(map[string]bool, len(taken))
	for _, v := range taken {
		used[v.Key()] = true
	}
	base := "novel_" + strings.ReplaceAll(attr, ".", "_")
	for i := 0; ; i++ {
		cand := relation.Str(fmt.Sprintf("%s_%d", base, i))
		if !used[cand.Key()] {
			return cand
		}
	}
}
