package tupleclass

import (
	"testing"

	"qfe/internal/relation"
)

// TestPartitioningUnderForcedHashCollisions proves the tuple-class paths'
// collision-verification invariant: with kernel hashes truncated to 2 bits
// (values, tuples and Class hashes all collide constantly), SubsetOf
// classification and SourceClasses grouping must reproduce the untruncated
// results exactly — value and class equality are always verified.
func TestPartitioningUnderForcedHashCollisions(t *testing.T) {
	buildKeys := func() ([]string, [][]int) {
		s := example51Space(t)
		scs, err := s.SourceClasses()
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]string, len(scs))
		rows := make([][]int, len(scs))
		for i, sc := range scs {
			keys[i] = sc.Key
			rows[i] = sc.Rows
		}
		return keys, rows
	}

	wantKeys, wantRows := buildKeys()

	relation.ForceHashCollisionsForTesting(2)
	defer relation.ForceHashCollisionsForTesting(0)

	gotKeys, gotRows := buildKeys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("collided partitioning has %d classes, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("class %d key diverges under collisions: %q vs %q", i, gotKeys[i], wantKeys[i])
		}
		if len(gotRows[i]) != len(wantRows[i]) {
			t.Fatalf("class %d row count diverges", i)
		}
		for j := range wantRows[i] {
			if gotRows[i][j] != wantRows[i][j] {
				t.Fatalf("class %d rows diverge: %v vs %v", i, gotRows[i], wantRows[i])
			}
		}
	}
}
